// aiesim -- per-tile micro-architectural model for DetailLevel::cycle.
//
// Each simulated tile carries a small synthetic micro-model -- VLIW
// pipeline stages, the vector register scoreboard, stream FIFO
// occupancies, memory-bank arbitration -- advanced once per simulated
// cycle. Stepping it is what gives cycle-approximate simulation its
// characteristic wall-clock cost (paper Table 2's aiesim column).
//
// Cycles split into two classes:
//   * stall cycles (tile waiting on data): only the time-base LFSR
//     advances -- the pipeline holds, the scoreboard is quiesced and the
//     FIFO/bank state is frozen;
//   * busy cycles (an activation segment executing): full per-cycle
//     update of every structure, accumulating the run checksum.
//
// Two implementations expose identical observable state:
//   * TileMicroRef -- the reference loop, one cycle per iteration.
//     Retained so the fast path can be checked bit-for-bit in-tree.
//   * TileMicroFast -- collapsed stepping. Stall gaps advance the LFSR
//     with GF(2) jump-ahead tables in O(set bits) instead of O(n); busy
//     spans collapse every replicated structure to one representative
//     trajectory and fold the pipeline's stage-7 checksum term into a
//     per-value popcount stencil, leaving a single fused loop whose cost
//     is the lfsr dependency chain itself. The checksum only regroups
//     u64 additions (the reference's bank XORs cancel in runs of eight
//     equal values), so it is bit-identical, not merely statistically
//     equivalent; tests/aiesim/test_micro_model.cpp holds the two
//     implementations to snapshot equality under fuzzing.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

namespace aiesim {

inline constexpr int kPipeStages = 8;          ///< VLIW issue..writeback
inline constexpr int kScoreboardEntries = 32;  ///< vector register file
inline constexpr int kStreamFifos = 4;         ///< 2 in + 2 out, 16-deep
inline constexpr int kMemoryBanks = 8;

/// Galois LFSR driving the synthetic micro-architectural activity.
inline constexpr std::uint64_t kLfsrTaps = 0xD800000000000000ull;
inline constexpr std::uint64_t kLfsrSeed = 0x9E3779B97F4A7C15ull;

[[nodiscard]] constexpr std::uint64_t lfsr_step(std::uint64_t x) {
  return (x >> 1) ^ ((~(x & 1) + 1) & kLfsrTaps);
}

/// Full observable micro-model state, for bit-exactness comparison.
struct MicroSnapshot {
  std::uint64_t lfsr = 0;
  std::uint64_t pipe[kPipeStages]{};
  std::uint64_t scoreboard[kScoreboardEntries]{};
  std::uint64_t fifo[kStreamFifos]{};
  std::uint64_t banks[kMemoryBanks]{};
  std::uint64_t checksum = 0;

  [[nodiscard]] bool operator==(const MicroSnapshot&) const = default;
};

namespace detail {

/// lfsr_step is linear over GF(2) (shift and XOR of a constant selected by
/// one state bit), so n steps are the state vector times the n-th power of
/// the 64x64 step matrix. cols[k][j] caches (M^(2^k)) * e_j; a jump by n
/// multiplies by M^(2^k) for each set bit k of n -- O(64 * popcount(n))
/// word XORs total, independent of the gap length.
struct LfsrJumpTables {
  std::uint64_t cols[64][64];

  LfsrJumpTables() {
    for (int j = 0; j < 64; ++j) cols[0][j] = lfsr_step(std::uint64_t{1} << j);
    for (int k = 1; k < 64; ++k) {
      for (int j = 0; j < 64; ++j) {
        cols[k][j] = apply(cols[k - 1], cols[k - 1][j]);
      }
    }
  }

  [[nodiscard]] static std::uint64_t apply(const std::uint64_t (&col)[64],
                                           std::uint64_t x) {
    std::uint64_t y = 0;
    while (x != 0) {
      y ^= col[std::countr_zero(x)];
      x &= x - 1;
    }
    return y;
  }
};

[[nodiscard]] inline std::uint64_t lfsr_jump(std::uint64_t x,
                                             std::uint64_t n) {
  // One table application (~32 cache-hot ctz/XOR iterations) per set bit
  // of n vs. a 4-op scalar step per cycle: the scalar loop wins until the
  // gap is roughly 24x the number of set bits.
  if (n < static_cast<std::uint64_t>(24 * std::popcount(n))) {
    for (; n != 0; --n) x = lfsr_step(x);
    return x;
  }
  static const LfsrJumpTables t;  // ~32 KiB, built on first long jump
  for (int k = 0; n != 0; ++k, n >>= 1) {
    if (n & 1) x = LfsrJumpTables::apply(t.cols[k], x);
  }
  return x;
}

}  // namespace detail

/// Reference implementation: one loop iteration per simulated cycle.
class TileMicroRef {
 public:
  void step_stall(std::uint64_t n) {
    std::uint64_t lfsr = lfsr_;
    for (std::uint64_t i = 0; i < n; ++i) lfsr = lfsr_step(lfsr);
    lfsr_ = lfsr;
  }

  void step_busy(std::uint64_t n) {
    std::uint64_t lfsr = lfsr_;
    std::uint64_t sum = checksum_;
    for (std::uint64_t i = 0; i < n; ++i) {
      lfsr = lfsr_step(lfsr);
      // Advance the VLIW pipeline (issue -> writeback).
      for (int s = kPipeStages - 1; s > 0; --s) {
        pipe_[s] = pipe_[s - 1] + (lfsr >> s & 1);
      }
      pipe_[0] = lfsr & 0xFF;
      // Age the vector register scoreboard; retire ready entries.
      for (auto& r : scoreboard_) {
        r = r > 0 ? r - 1 : (lfsr >> 17) & 0x7;
        sum += r;
      }
      // Stream FIFO occupancies (2 in + 2 out x 16-deep).
      for (auto& f : fifo_) {
        f = (f + ((lfsr >> 5) & 3)) & 0xF;
        sum += f;
      }
      // Memory-bank arbitration round-robin state.
      for (auto& b : banks_) {
        b = (b + 1) & 7;
        sum ^= b;
      }
      sum += pipe_[kPipeStages - 1];
    }
    lfsr_ = lfsr;
    checksum_ = sum;
  }

  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

  [[nodiscard]] MicroSnapshot snapshot() const {
    MicroSnapshot s;
    s.lfsr = lfsr_;
    std::memcpy(s.pipe, pipe_, sizeof pipe_);
    std::memcpy(s.scoreboard, scoreboard_, sizeof scoreboard_);
    std::memcpy(s.fifo, fifo_, sizeof fifo_);
    std::memcpy(s.banks, banks_, sizeof banks_);
    s.checksum = checksum_;
    return s;
  }

 private:
  std::uint64_t lfsr_ = kLfsrSeed;
  std::uint64_t pipe_[kPipeStages]{};
  std::uint64_t scoreboard_[kScoreboardEntries]{};
  std::uint64_t fifo_[kStreamFifos]{};
  std::uint64_t banks_[kMemoryBanks]{};
  std::uint64_t checksum_ = 0;
};

/// Fast implementation: bit-identical to TileMicroRef by construction.
///
/// Collapse invariants (all hold from the zero-initialized start state and
/// are preserved by every step, so they hold forever):
///   * all scoreboard entries see identical updates -> one trajectory `sb_`
///     stands for 32 entries; the checksum contribution is 32x one entry,
///     accumulated unscaled and multiplied once at the end (exact mod 2^64).
///   * all FIFO occupancies are equal -> one trajectory `fifo_` stands for
///     4 FIFOs, its contribution scaled by 4 the same way.
///   * all banks are equal -> the reference's eight consecutive XORs of
///     one value cancel to zero in the checksum, and the state jumps to
///     (b + n) & 7.
///   * pipe stage s at cycle t equals (lfsr_{t-s} & 0xFF) plus the carry
///     bits sum_{k=1..s} bit_k(lfsr_{t-s+k}). Summing the stage-7 term
///     over a whole segment and regrouping by lfsr value, each interior
///     value x contributes (x & 0xFF) + popcount(x & 0xFE) -- its bits
///     1..7 each feed exactly one later stage-7 output -- with partial
///     bit masks only at the segment edges. The architectural pipe state
///     is never materialised during stepping: it is a pure function of
///     the last 8 busy-cycle lfsr values, which `hist_` carries across
///     segments (stalls freeze the pipe, so only busy values matter), and
///     snapshot() rebuilds it on demand. The all-zero initial history
///     reproduces the zero-initialised pipe exactly.
///   * all checksum terms are u64 additions, which commute and associate
///     mod 2^64 -- the regrouped sums are exact, not approximate.
///
/// The resulting per-cycle work is one lfsr step plus a handful of
/// independent scalar ops hanging off it, so throughput is bound by the
/// lfsr dependency chain rather than by the reference's per-structure
/// loops; stall gaps skip the chain entirely via lfsr_jump.
class TileMicroFast {
 public:
  void step_stall(std::uint64_t n) { lfsr_ = detail::lfsr_jump(lfsr_, n); }

  void step_busy(std::uint64_t n) {
    if (n == 0) return;
    using u64 = std::uint64_t;
    u64 ring[8];  // ring[m & 7] = lfsr value of busy cycle m (m counts
                  // from this segment's start; history occupies m = -8..-1)
    for (int i = 0; i < 8; ++i) ring[i] = hist_[i];
    u64 sum = 0;

    // Stage-7 stencil taps read by this segment's first 7 outputs from the
    // previous segment's tail: history value x_{-j} is the (x & 0xFF) base
    // of output 7-j and carry tap k of output 7-j-k.
    for (int j = 1; j <= 7; ++j) {
      const u64 x = hist_[8 - j];
      if (static_cast<u64>(7 - j) < n) sum += x & 0xFF;
      const int hi = 7 - j;
      const int lo =
          std::max(1, 8 - j - static_cast<int>(std::min<u64>(n, 8)));
      if (hi >= lo) {
        const u64 mask =
            (std::uint64_t{1} << (hi + 1)) - (std::uint64_t{1} << lo);
        sum += static_cast<unsigned>(std::popcount(x & mask));
      }
    }

    u64 x = lfsr_;
    u64 f = fifo_;
    u64 r = sb_;
    u64 sum_f = 0;
    u64 sum_r = 0;
    // Interior values: full stencil contribution. The last 7 values feed
    // outputs beyond this segment, so their high carry bits drop out.
    const u64 n_main = n >= 8 ? n - 7 : 0;
    u64 m = 0;
    for (; m < n_main; ++m) {
      x = lfsr_step(x);
      ring[m & 7] = x;
      sum += (x & 0xFF) + static_cast<unsigned>(std::popcount(x & 0xFE));
      f = (f + ((x >> 5) & 3)) & 0xF;
      sum_f += f;
      const u64 reload = (x >> 17) & 7;
      r = r != 0 ? r - 1 : reload;
      sum_r += r;
    }
    for (; m < n; ++m) {
      x = lfsr_step(x);
      ring[m & 7] = x;
      const unsigned k0 = static_cast<unsigned>(m + 8 - n);  // 1..7
      sum += static_cast<unsigned>(
          std::popcount(x & (std::uint64_t{0xFF} << k0) & 0xFE));
      f = (f + ((x >> 5) & 3)) & 0xF;
      sum_f += f;
      const u64 reload = (x >> 17) & 7;
      r = r != 0 ? r - 1 : reload;
      sum_r += r;
    }

    for (int j = 0; j < 8; ++j) hist_[j] = ring[(n + j) & 7];
    lfsr_ = x;
    fifo_ = f;
    sb_ = r;
    bank_ = (bank_ + n) & 7;
    checksum_ += sum + kStreamFifos * sum_f + kScoreboardEntries * sum_r;
  }

  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

  [[nodiscard]] MicroSnapshot snapshot() const {
    MicroSnapshot s;
    s.lfsr = lfsr_;
    // Rebuild the pipe from the busy-cycle lfsr history (hist_[7] is the
    // most recent value): stage j = (x_{t-j} & 0xFF) + carries.
    for (int j = 0; j < kPipeStages; ++j) {
      u64 v = hist_[7 - j] & 0xFF;
      for (int k = 1; k <= j; ++k) v += (hist_[7 - j + k] >> k) & 1;
      s.pipe[j] = v;
    }
    for (auto& v : s.scoreboard) v = sb_;
    for (auto& v : s.fifo) v = fifo_;
    for (auto& v : s.banks) v = bank_;
    s.checksum = checksum_;
    return s;
  }

 private:
  using u64 = std::uint64_t;

  std::uint64_t lfsr_ = kLfsrSeed;
  std::uint64_t hist_[8]{};  ///< last 8 busy-cycle lfsr values, oldest first
  std::uint64_t sb_ = 0;     ///< collapsed scoreboard trajectory (x32)
  std::uint64_t fifo_ = 0;   ///< collapsed FIFO occupancy (x4)
  std::uint64_t bank_ = 0;   ///< collapsed bank arbitration state (x8)
  std::uint64_t checksum_ = 0;
};

}  // namespace aiesim

// aiesim -- kernel-to-tile placement on the 2D AIE array.
//
// The AIE array is "a two-dimensional grid of VLIW processors" (paper
// Section 1); kernels communicate through the stream switch network, so
// the physical distance between two communicating tiles adds per-hop
// switch latency. aiecompiler performs this placement on hardware; the
// cycle-approximate simulator models it here: kernels get tile coordinates
// (user-specified or automatic snake placement) and intra-array streams
// are charged a Manhattan-distance hop cost.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/graph_view.hpp"

namespace aiesim {

struct TileCoord {
  int col = 0;
  int row = 0;

  [[nodiscard]] bool operator==(const TileCoord&) const = default;
};

[[nodiscard]] inline int manhattan(TileCoord a, TileCoord b) {
  return std::abs(a.col - b.col) + std::abs(a.row - b.row);
}

/// Assignment of every kernel (by index in the flattened graph) to a tile.
class Placement {
 public:
  Placement() = default;

  /// Automatic placement: kernels fill the array in snake (boustrophedon)
  /// order, which keeps adjacent kernel indices on adjacent tiles -- the
  /// heuristic aiecompiler applies to simple pipelines.
  static Placement automatic(const cgsim::GraphView& g, int columns = 8) {
    Placement p;
    for (std::size_t k = 0; k < g.kernels.size(); ++k) {
      const int row = static_cast<int>(k) / columns;
      const int col_in_row = static_cast<int>(k) % columns;
      const int col = row % 2 == 0 ? col_in_row : columns - 1 - col_in_row;
      p.coords_.push_back(TileCoord{col, row});
    }
    return p;
  }

  /// Explicit placement by kernel name; unknown kernels fall back to the
  /// automatic position.
  static Placement explicit_by_name(
      const cgsim::GraphView& g,
      const std::map<std::string, TileCoord>& by_name, int columns = 8) {
    Placement p = automatic(g, columns);
    for (std::size_t k = 0; k < g.kernels.size(); ++k) {
      const auto it = by_name.find(std::string{g.kernels[k].name});
      if (it != by_name.end()) p.coords_[k] = it->second;
    }
    return p;
  }

  /// Reconstructs a placement from serialized coordinates (compiled-
  /// artifact store); round-trips exactly with coords().
  static Placement from_coords(std::vector<TileCoord> coords) {
    Placement p;
    p.coords_ = std::move(coords);
    return p;
  }

  [[nodiscard]] const std::vector<TileCoord>& coords() const {
    return coords_;
  }

  [[nodiscard]] TileCoord of(std::size_t kernel_index) const {
    return kernel_index < coords_.size() ? coords_[kernel_index]
                                         : TileCoord{};
  }
  [[nodiscard]] std::size_t size() const { return coords_.size(); }
  [[nodiscard]] bool empty() const { return coords_.empty(); }

  /// Stream-switch hops between producer and consumer kernels of `edge`
  /// (max over all communicating pairs; 0 when fewer than two endpoints
  /// are kernels).
  [[nodiscard]] int edge_hops(const cgsim::GraphView& g, int edge) const {
    std::vector<std::size_t> producers;
    std::vector<std::size_t> consumers;
    for (std::size_t k = 0; k < g.kernels.size(); ++k) {
      const cgsim::FlatKernel& fk = g.kernels[k];
      for (int pi = 0; pi < fk.nports; ++pi) {
        const cgsim::FlatPort& fp =
            g.ports[static_cast<std::size_t>(fk.first_port + pi)];
        if (fp.edge != edge) continue;
        (fp.is_read ? consumers : producers).push_back(k);
      }
    }
    int hops = 0;
    for (std::size_t p : producers) {
      for (std::size_t c : consumers) {
        hops = std::max(hops, manhattan(of(p), of(c)));
      }
    }
    return hops;
  }

  /// Hops for every edge in one pass over the port table. Equivalent to
  /// calling edge_hops() per edge, which rescans all kernel ports each
  /// time; setup-time callers building dense per-edge tables use this.
  [[nodiscard]] std::vector<int> all_edge_hops(
      const cgsim::GraphView& g) const {
    std::vector<std::vector<std::size_t>> producers(g.edges.size());
    std::vector<std::vector<std::size_t>> consumers(g.edges.size());
    for (std::size_t k = 0; k < g.kernels.size(); ++k) {
      const cgsim::FlatKernel& fk = g.kernels[k];
      for (int pi = 0; pi < fk.nports; ++pi) {
        const cgsim::FlatPort& fp =
            g.ports[static_cast<std::size_t>(fk.first_port + pi)];
        const auto e = static_cast<std::size_t>(fp.edge);
        (fp.is_read ? consumers : producers)[e].push_back(k);
      }
    }
    std::vector<int> hops(g.edges.size(), 0);
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      for (std::size_t p : producers[e]) {
        for (std::size_t c : consumers[e]) {
          hops[e] = std::max(hops[e], manhattan(of(p), of(c)));
        }
      }
    }
    return hops;
  }

 private:
  std::vector<TileCoord> coords_;
};

}  // namespace aiesim

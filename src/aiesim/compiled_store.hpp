// aiesim -- persistent on-disk store for CompiledGraph artifacts.
//
// Compiling a graph is ~hundreds of microseconds of placement scans, hop
// matrices and cost seeding per configuration; the in-process
// CompiledGraphCache amortizes that within one process lifetime, but a
// restarted cgsimd pays it all again on the first request of every spec.
// This store extends the cache across restarts: an artifact's flat arena
// (compiled.hpp) is written verbatim behind a versioned CRC header, keyed
// by the SAME exact-match serialized bytes (topology + placement + cost)
// the in-process LRU uses, and loaded back as a read-only mmap the
// artifact's table spans point straight into -- one checksum pass plus
// bounds-checked pointer fixup, no per-table deserialization and no
// recomputation. The mapping is kept alive by the artifact's `backing`
// and unmapped when the last engine holding it lets go; publication is
// always whole-file rename, never in-place mutation, so a mapped
// artifact can never change underneath a running simulation.
//
// Robustness rules (a cache must never be able to break a simulation):
//   * atomic publication: artifacts are written to a temp file and
//     rename()d into place, so readers only ever see whole files;
//   * every load validates magic, format version, header CRC, payload CRC
//     and the FULL embedded key against the requested key -- any mismatch
//     (corruption, truncation, fnv collision, stale format) returns null
//     and the caller recompiles; the offending file is deleted;
//   * bounded on-disk LRU: size and count caps enforced after each save by
//     deleting oldest-mtime files first; files with a foreign version are
//     evicted on sight during the scan.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "compiled.hpp"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace aiesim {

// ---------------------------------------------------------------------------
// CRC-32C (Castagnoli): hardware instruction when -march provides SSE4.2,
// bit-identical table fallback otherwise. Chosen over the wire protocol's
// CRC-32 because artifact payloads are hundreds of kilobytes and the
// checksum pass sits on the restart-to-warm-bind latency path.
// ---------------------------------------------------------------------------

namespace store_detail {

struct Crc32cTable {
  std::uint32_t t[256] = {};
  constexpr Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
inline constexpr Crc32cTable crc32c_table{};

}  // namespace store_detail

namespace store_detail {

/// Unfinalized CRC-32C state update (no init/complement), so lanes and
/// tails can be chained.
[[nodiscard]] inline std::uint32_t crc32c_update(std::uint32_t c,
                                                 const std::uint8_t* p,
                                                 std::size_t n) {
#if defined(__SSE4_2__)
  while (n >= 8) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    c = static_cast<std::uint32_t>(_mm_crc32_u64(c, v));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    c = crc32c_table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
#endif
  return c;
}

}  // namespace store_detail

[[nodiscard]] inline std::uint32_t store_crc32c(const void* data,
                                                std::size_t n) {
  return ~store_detail::crc32c_update(
      ~0u, static_cast<const std::uint8_t*>(data), n);
}

/// Payload checksum: four independent CRC-32C lanes over four equal
/// quarters (the last lane absorbs the remainder), combined by a CRC over
/// the lane results. The hardware crc32 instruction carries a 3-cycle
/// serial dependency, so one chain tops out near 2.5 bytes/cycle while
/// four interleaved chains run close to memory bandwidth -- and the
/// checksum pass sits directly on the restart-to-warm-bind latency path.
/// Any flipped payload bit flips its lane's CRC and therefore the
/// combined value, so corruption coverage matches a single full-length
/// CRC. Deterministic in n, hence stable as a file-format checksum.
[[nodiscard]] inline std::uint32_t store_crc32c_wide(const void* data,
                                                     std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::size_t quarter = n / 4;
  std::uint32_t lane[4] = {~0u, ~0u, ~0u, ~0u};
#if defined(__SSE4_2__)
  // Scalar lane registers + explicit per-lane pointers: an indexed
  // lane[] update inside the loop round-trips the state through memory
  // and serializes again.
  std::uint32_t c0 = ~0u, c1 = ~0u, c2 = ~0u, c3 = ~0u;
  const std::uint8_t* p0 = p;
  const std::uint8_t* p1 = p + quarter;
  const std::uint8_t* p2 = p + 2 * quarter;
  const std::uint8_t* p3 = p + 3 * quarter;
  std::uint64_t v0, v1, v2, v3;
  for (std::size_t left = quarter / 8; left > 0; --left) {
    std::memcpy(&v0, p0, 8);
    std::memcpy(&v1, p1, 8);
    std::memcpy(&v2, p2, 8);
    std::memcpy(&v3, p3, 8);
    c0 = static_cast<std::uint32_t>(_mm_crc32_u64(c0, v0));
    c1 = static_cast<std::uint32_t>(_mm_crc32_u64(c1, v1));
    c2 = static_cast<std::uint32_t>(_mm_crc32_u64(c2, v2));
    c3 = static_cast<std::uint32_t>(_mm_crc32_u64(c3, v3));
    p0 += 8;
    p1 += 8;
    p2 += 8;
    p3 += 8;
  }
  lane[0] = c0;
  lane[1] = c1;
  lane[2] = c2;
  lane[3] = c3;
  const std::size_t done = (quarter / 8) * 8;
#else
  const std::size_t done = 0;
#endif
  for (int l = 0; l < 4; ++l) {
    const std::size_t begin = static_cast<std::size_t>(l) * quarter;
    const std::size_t len = (l == 3 ? n - begin : quarter) - done;
    lane[l] = ~store_detail::crc32c_update(lane[l], p + begin + done, len);
  }
  return store_crc32c(lane, sizeof(lane));
}

// ---------------------------------------------------------------------------
// Flat format.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kStoreMagic = 0x43474353u;  // "CGCS"
// Version 2: payload is the artifact arena verbatim (compiled.hpp flat
// format, parsed in place) and payload_crc is the 4-lane wide CRC.
inline constexpr std::uint32_t kStoreVersion = 2;

/// 24-byte file header. `header_crc` covers the 20 bytes before it;
/// `payload_crc` covers the `payload_bytes` that follow the header.
struct StoreFileHdr {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(StoreFileHdr) == 24);

namespace store_detail {

/// Bounds-checked in-place parser over the arena payload (heap or mmap).
/// Mirrors ArenaWriter's emission exactly: scalars are 8-byte slots,
/// array sections are handed back as spans into the payload itself and
/// advanced over with 8-byte padding. Every accessor reports failure
/// instead of walking past the mapping, so a truncated or hostile file
/// degrades to "recompile", never to UB.
class ArenaParser {
 public:
  ArenaParser(const std::byte* p, std::size_t n) : base_(p), n_(n) {}

  bool u64(std::uint64_t& v) {
    if (n_ - off_ < 8 || off_ > n_) return false;
    std::memcpy(&v, base_ + off_, 8);
    off_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool i64_as_int(int& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = static_cast<int>(static_cast<std::int64_t>(bits));
    return true;
  }

  template <class T>
  bool arr(std::span<const T>& out, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> && alignof(T) <= 8);
    const std::size_t bytes = count * sizeof(T);
    if (count > n_ / sizeof(T)) return false;  // overflow-safe bound
    const std::size_t need = (bytes + 7u) & ~std::size_t{7};
    if (off_ > n_ || n_ - off_ < need) return false;
    out = {reinterpret_cast<const T*>(base_ + off_), count};
    off_ += need;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return off_ == n_; }

 private:
  const std::byte* base_;
  std::size_t n_;
  std::size_t off_ = 0;
};

inline bool parse_cost(ArenaParser& r, CostModel& c) {
  return r.f64(c.vector_slots) && r.f64(c.shuffle_slots) &&
         r.f64(c.load_slots) && r.f64(c.store_slots) &&
         r.f64(c.scalar_slots) && r.f64(c.activation_ramp) &&
         r.i64_as_int(c.stream_beat_bits) && r.f64(c.plio_clock_ratio) &&
         r.f64(c.stream_access_overhead) &&
         r.f64(c.generated_beat_factor) && r.f64(c.window_sync_cycles) &&
         r.f64(c.window_bytes_per_cycle) && r.f64(c.hop_cycles) &&
         r.f64(c.gmio_setup_cycles) && r.f64(c.gmio_bytes_per_cycle);
}

/// One CSR table: leading value count, offsets, values -- all borrowed
/// from the payload. Validates the CSR invariants (offsets start at 0,
/// never decrease, end at nvals) and that every value indexes inside
/// [0, limit), so traversals over a decoded artifact cannot stray even if
/// a corrupt file were to slip past the checksum.
inline bool parse_csr(ArenaParser& r, AdjTable& out, std::size_t n_lists,
                      std::size_t max_total, std::size_t value_limit) {
  std::uint64_t nvals = 0;
  if (!r.u64(nvals) || nvals > max_total) return false;
  if (!r.arr(out.offsets, n_lists + 1) ||
      !r.arr(out.values, static_cast<std::size_t>(nvals))) {
    return false;
  }
  if (out.offsets.front() != 0 || out.offsets.back() != nvals) return false;
  for (std::size_t i = 0; i < n_lists; ++i) {
    if (out.offsets[i] > out.offsets[i + 1]) return false;
  }
  for (const std::int32_t v : out.values) {
    if (v < 0 || static_cast<std::size_t>(v) >= value_limit) return false;
  }
  return true;
}

}  // namespace store_detail

/// The flat payload of an artifact -- exactly its arena bytes (the store
/// prepends only the CRC header on disk).
[[nodiscard]] inline std::string serialize_compiled_graph(
    const CompiledGraph& cg) {
  return std::string{cg.payload()};
}

/// Binds an artifact to payload bytes in place: table members become
/// spans into `payload`, whose lifetime is carried by `backing` (the
/// store passes the file mapping). Without a backing, the payload is
/// first copied to an owned arena, so callers holding transient buffers
/// stay safe. Returns nullptr on any structural violation; a decoded
/// artifact is internally consistent and in-bounds.
[[nodiscard]] inline std::shared_ptr<CompiledGraph>
deserialize_compiled_graph(const std::byte* payload, std::size_t n,
                           std::shared_ptr<const void> backing = nullptr) {
  if (backing == nullptr) {
    // Never 0 slots: an empty vector's data() is null, and a null aliased
    // backing would be indistinguishable from "no backing" above.
    auto own =
        std::make_shared<std::vector<std::uint64_t>>((n + 7) / 8 + 1);
    if (n > 0) std::memcpy(own->data(), payload, n);
    const auto* base = reinterpret_cast<const std::byte*>(own->data());
    return deserialize_compiled_graph(
        base, n, std::shared_ptr<const void>(own, own->data()));
  }

  store_detail::ArenaParser r{payload, n};
  auto cg = std::make_shared<CompiledGraph>();
  std::uint64_t n_kernels = 0, n_edges = 0, gen = 0, key_bytes = 0;
  if (!r.u64(n_kernels) || !r.u64(n_edges) || !r.u64(gen) ||
      !r.i64_as_int(cg->array_columns) ||
      !store_detail::parse_cost(r, cg->cost) || !r.u64(key_bytes) ||
      n_kernels > (1u << 24) || n_edges > (1u << 24) ||
      key_bytes > (1u << 30)) {
    return nullptr;
  }
  cg->generated_io = gen != 0;
  cg->n_kernels = static_cast<std::size_t>(n_kernels);
  cg->n_edges = static_cast<std::size_t>(n_edges);

  std::span<const char> key;
  if (!r.arr(key, static_cast<std::size_t>(key_bytes))) return nullptr;
  cg->key.assign(key.data(), key.size());

  const std::size_t max_adj = 16u * (cg->n_kernels + cg->n_edges + 1);
  if (!r.arr(cg->placement_coords, cg->n_kernels) ||
      !r.arr(cg->edge_flags, cg->n_edges) ||
      !r.arr(cg->edge_hop, cg->n_edges) ||
      !r.arr(cg->edge_cost, cg->n_edges * 4) ||
      !store_detail::parse_csr(r, cg->kernel_in_edges, cg->n_kernels,
                               max_adj, cg->n_edges) ||
      !store_detail::parse_csr(r, cg->kernel_out_edges, cg->n_kernels,
                               max_adj, cg->n_edges) ||
      !store_detail::parse_csr(r, cg->edge_producer_kernels, cg->n_edges,
                               max_adj, cg->n_kernels) ||
      !store_detail::parse_csr(r, cg->edge_consumer_kernels, cg->n_edges,
                               max_adj, cg->n_kernels) ||
      !r.exhausted()) {
    return nullptr;
  }
  cg->payload_data = reinterpret_cast<const char*>(payload);
  cg->payload_bytes = n;
  cg->backing = std::move(backing);
  return cg;
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// Directory-backed artifact store with a bounded on-disk LRU. Safe for
/// concurrent use by multiple threads and multiple processes sharing one
/// directory: publication is an atomic rename, loads only ever see whole
/// files, and losing a file race degrades to a recompile.
class CompiledStore final : public CompiledArtifactStore {
 public:
  struct Stats {
    std::uint64_t load_hits = 0;
    std::uint64_t load_misses = 0;    ///< no file for the key
    std::uint64_t load_failures = 0;  ///< bad file: rejected + deleted
    std::uint64_t saves = 0;
    std::uint64_t save_failures = 0;
    std::uint64_t evicted_files = 0;  ///< LRU-cap + stale-version deletions
  };

  explicit CompiledStore(std::string dir,
                         std::size_t max_bytes = 256u << 20,
                         std::size_t max_files = 256)
      : dir_(std::move(dir)), max_bytes_(max_bytes), max_files_(max_files) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best effort
  }

  [[nodiscard]] const std::string& dir() const { return dir_; }

  std::shared_ptr<const CompiledGraph> load(const std::string& key) override {
    const std::string path = path_for(key);
    auto cg = load_file(path, &key);
    if (cg != nullptr) {
      cg->from_store = true;
      bump(stats_.load_hits);
      touch(path);  // freshen mtime: LRU eviction order
      return cg;
    }
    return nullptr;
  }

  void save(const CompiledGraph& cg) override {
    const std::string payload = serialize_compiled_graph(cg);
    StoreFileHdr h;
    h.magic = kStoreMagic;
    h.version = kStoreVersion;
    h.payload_bytes = payload.size();
    h.payload_crc = store_crc32c_wide(payload.data(), payload.size());
    h.header_crc = store_crc32c(&h, offsetof(StoreFileHdr, header_crc));
    const std::string tmp =
        dir_ + "/.tmp-" + std::to_string(static_cast<long>(::getpid())) +
        "-" + std::to_string(
                  tmp_counter_.fetch_add(1, std::memory_order_relaxed));
    const std::string path = path_for(cg.key);
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      bump(stats_.save_failures);
      return;
    }
    const bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1 &&
                    (payload.empty() ||
                     std::fwrite(payload.data(), payload.size(), 1, f) == 1);
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      bump(stats_.save_failures);
      return;
    }
    bump(stats_.saves);
    evict_to_caps();
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard lock{mu_};
    return stats_;
  }

  /// Deletes every artifact (tests; never called on the hot path).
  void clear() {
    std::error_code ec;
    for (const auto& e : std::filesystem::directory_iterator{dir_, ec}) {
      if (e.path().extension() == kExt) {
        std::filesystem::remove(e.path(), ec);
      }
    }
  }

  /// File an artifact with `key` would live at (tests: corruption
  /// injection).
  [[nodiscard]] std::string path_for(const std::string& key) const {
    // Word-wide fnv1a-64 names the file; the embedded key resolves
    // collisions, so the hash only spreads names across the directory.
    // Eight bytes per multiply: keys run to tens of KiB and a byte-serial
    // FNV (one dependent multiply per byte) would cost more than the
    // mmap+checksum of the artifact it names.
    std::uint64_t hsh = 1469598103934665603ull;
    std::size_t i = 0;
    for (; i + 8 <= key.size(); i += 8) {
      std::uint64_t v = 0;
      std::memcpy(&v, key.data() + i, 8);
      hsh = (hsh ^ v) * 1099511628211ull;
    }
    for (; i < key.size(); ++i) {
      hsh = (hsh ^ static_cast<std::uint8_t>(key[i])) * 1099511628211ull;
    }
    hsh ^= hsh >> 32;  // fold high mixing back into the low hex digits
    hsh *= 0x9e3779b97f4a7c15ull;
    hsh ^= hsh >> 29;
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hsh));
    return dir_ + "/" + hex + kExt;
  }

 private:
  static constexpr const char* kExt = ".cgc";

  void bump(std::uint64_t& field) {
    std::lock_guard lock{mu_};
    ++field;
  }

  static void touch(const std::string& path) {
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
  }

  /// mmap + validate + bind in place. `want_key` non-null: reject
  /// artifacts whose embedded key differs (hash collision or foreign
  /// file). The returned artifact's spans point into the mapping, which
  /// its `backing` keeps mapped until the last holder drops it -- an
  /// unlink (eviction, clear) only frees the pages once every engine
  /// using the artifact is done.
  std::shared_ptr<CompiledGraph> load_file(const std::string& path,
                                           const std::string* want_key) {
    net_fd_guard fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
    if (fd.fd < 0) {
      bump(stats_.load_misses);
      return nullptr;
    }
    struct stat st{};
    if (::fstat(fd.fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(StoreFileHdr)) {
      return reject(path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    // MAP_POPULATE prefaults the whole artifact in one syscall; the
    // checksum pass reads every page immediately anyway, and dozens of
    // on-demand minor faults would otherwise dominate the bind latency.
#if defined(MAP_POPULATE)
    constexpr int kMapFlags = MAP_PRIVATE | MAP_POPULATE;
#else
    constexpr int kMapFlags = MAP_PRIVATE;
#endif
    void* map = ::mmap(nullptr, size, PROT_READ, kMapFlags, fd.fd, 0);
    if (map == MAP_FAILED) return reject(path);
    std::shared_ptr<const void> backing{
        map, [size](const void* p) { ::munmap(const_cast<void*>(p), size); }};
    const auto* bytes = static_cast<const std::byte*>(map);
    StoreFileHdr h;
    std::memcpy(&h, bytes, sizeof(h));
    if (h.magic != kStoreMagic || h.version != kStoreVersion ||
        h.header_crc !=
            store_crc32c(bytes, offsetof(StoreFileHdr, header_crc)) ||
        h.payload_bytes != size - sizeof(StoreFileHdr) ||
        h.payload_crc != store_crc32c_wide(bytes + sizeof(StoreFileHdr),
                                           static_cast<std::size_t>(
                                               h.payload_bytes))) {
      return reject(path);
    }
    auto cg = deserialize_compiled_graph(
        bytes + sizeof(StoreFileHdr),
        static_cast<std::size_t>(h.payload_bytes), std::move(backing));
    if (cg == nullptr || (want_key != nullptr && cg->key != *want_key)) {
      return reject(path);
    }
    return cg;
  }

  std::shared_ptr<CompiledGraph> reject(const std::string& path) {
    std::remove(path.c_str());  // a bad artifact must not be retried forever
    bump(stats_.load_failures);
    return nullptr;
  }

  /// Size/count caps + stale-version eviction: one directory scan, stale
  /// or foreign-version files deleted on sight, then oldest-mtime files
  /// until both caps hold.
  void evict_to_caps() {
    std::lock_guard lock{evict_mu_};
    struct Item {
      std::filesystem::path path;
      std::filesystem::file_time_type mtime;
      std::uintmax_t size;
    };
    std::vector<Item> items;
    std::uintmax_t total = 0;
    std::error_code ec;
    for (const auto& e : std::filesystem::directory_iterator{dir_, ec}) {
      if (e.path().extension() != kExt) continue;
      StoreFileHdr h{};
      bool stale = true;
      if (std::FILE* f = std::fopen(e.path().c_str(), "rb")) {
        stale = std::fread(&h, sizeof(h), 1, f) != 1 ||
                h.magic != kStoreMagic || h.version != kStoreVersion;
        std::fclose(f);
      }
      if (stale) {
        std::filesystem::remove(e.path(), ec);
        bump_evicted();
        continue;
      }
      std::error_code ec2;
      const auto size = std::filesystem::file_size(e.path(), ec2);
      const auto mtime = std::filesystem::last_write_time(e.path(), ec2);
      if (ec2) continue;  // raced a concurrent eviction
      total += size;
      items.push_back(Item{e.path(), mtime, size});
    }
    if (items.size() <= max_files_ && total <= max_bytes_) return;
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.mtime < b.mtime; });
    std::size_t live = items.size();
    for (const Item& it : items) {
      if (live <= max_files_ && total <= max_bytes_) break;
      std::filesystem::remove(it.path, ec);
      total -= it.size;
      --live;
      bump_evicted();
    }
  }

  void bump_evicted() { bump(stats_.evicted_files); }

  struct net_fd_guard {
    int fd;
    ~net_fd_guard() {
      if (fd >= 0) ::close(fd);
    }
  };

  std::string dir_;
  std::size_t max_bytes_;
  std::size_t max_files_;
  mutable std::mutex mu_;       ///< stats
  std::mutex evict_mu_;         ///< one eviction scan at a time
  std::atomic<std::uint64_t> tmp_counter_{0};
  Stats stats_;
};

}  // namespace aiesim

// apps -- tiled int8 GEMM with 32-bit accumulation and saturating
// requantize (the AIE4ML-style NN linear layer).
//
// C = requant(A x B) over 16x16 int8 tiles. The micro-kernel runs on the
// AIE-ML 8-bit dot-product MAC shape: packed operands feed `mac_dot4`,
// which reduces 4-deep int8 multiply groups into 16 int32 accumulator
// lanes. Operand packing happens in-kernel with constant-index permutes
// (vectorized shuffles on the native backend):
//
//   * B packs per 4-row block: packed lane 4c+j  <- B[4kb+j][c], so each
//     group of 4 consecutive lanes holds one output column's K-slice.
//   * A's row r replicates as    lane 4c+j  <- A[r][4kb+j]  (the same 4
//     values broadcast to every column group) -- the 4 int8 values are one
//     int32 word, so the replication is a single 16-lane broadcast.
//
// The graph is a cascade-style split-K fan-in chain, AIE-ML's hardware
// idiom: K splits across kCascade kernels, each MAC-ing its partial sum
// onto the int32 partial streamed from the previous chain element; a
// requantize kernel applies the saturating shift-round (srs) with the
// shift exposed as a runtime parameter (RTP). Two parallel strips of the
// chain give the partitioner a 10-kernel graph.
//
// The bf16 variant stages bf16 tiles through fp32 vector compute
// (to_float / fma / to_bf16), mirroring AIE-ML's bf16 data path.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "aie/aie.hpp"
#include "apps/tile.hpp"
#include "core/cgsim.hpp"

namespace apps::ml_gemm {

constexpr unsigned kTile = 16;     ///< tile dimension (16x16)
constexpr unsigned kLanes = 16;    ///< int32 accumulator lanes per tile row
constexpr unsigned kGroup = 4;     ///< dot-product depth of the int8 MAC
constexpr unsigned kCascade = 4;   ///< K-slices per cascade chain
constexpr unsigned kStrips = 2;    ///< parallel cascade chains

using Tile8 = apps::tile::Tile<std::int8_t, kTile>;
using Tile32 = apps::tile::Tile<std::int32_t, kTile>;
using TileBf = apps::tile::Tile<aie::bf16, kTile>;
using TilePair8 = apps::tile::TilePair<std::int8_t, kTile>;

namespace detail {

/// Constant permute index vector for the in-kernel B packing: idx_b
/// transposes one 4x16 row block of B into column-grouped lanes. Built
/// once; the permute executes as a vector shuffle.
[[nodiscard]] inline const aie::vector<std::int32_t, 64>& idx_b() {
  static const auto idx = [] {
    aie::vector<std::int32_t, 64> v;
    for (unsigned l = 0; l < 64; ++l) {
      v.set(l, static_cast<std::int32_t>(16 * (l & 3) + (l >> 2)));
    }
    return v;
  }();
  return idx;
}

}  // namespace detail

/// int8 tile MAC: cin + a x b accumulated exactly in int32 lanes. Rows are
/// processed kRowBlk at a time so each `mac_dot4` covers kRowBlk * kLanes
/// accumulator lanes; the per-lane formulas are unchanged, so results stay
/// bit-identical across backends and to the row-at-a-time evaluation.
template <class B = aie::simd::backend>
[[nodiscard]] inline Tile32 mac_tile(const Tile32& cin, const Tile8& a,
                                     const Tile8& b) {
  constexpr unsigned kRowBlk = 4;                    // rows per mac_dot4
  constexpr unsigned kRowElems = kLanes * kGroup;    // packed lanes per row
  constexpr unsigned kBlkElems = kRowBlk * kRowElems;
  Tile32 out;
  // Pack B once per tile: one 64-lane permute per 4-row block, replicated
  // across the row block (every row of A meets the same packed B).
  std::array<aie::vector<std::int8_t, kBlkElems>, kCascade> bblk;
  for (unsigned kb = 0; kb < kCascade; ++kb) {
    const auto bp =
        aie::permute<B>(aie::load_v<64>(&b.m[kb * 64]), detail::idx_b());
    for (unsigned q = 0; q < kRowBlk; ++q) {
      std::memcpy(bblk[kb].data().data() + q * kRowElems, bp.data().data(),
                  kRowElems);
    }
  }
  for (unsigned r = 0; r < kTile; r += kRowBlk) {
    // kRowBlk rows of cin are contiguous: one wide ups covers the block.
    auto acc = aie::ups<aie::acc32_tag, B>(
        aie::load_v<kRowBlk * kLanes>(&cin.m[r * kTile]), 0);
    for (unsigned kb = 0; kb < kCascade; ++kb) {
      // Replicate each row's 4-wide K-slice across its 16 column groups.
      // The 4 int8 values form one int32 word, so this is pure operand
      // marshalling (a word broadcast per row); memcpy in and out
      // round-trips the bytes, keeping the lane order endian-independent.
      aie::vector<std::int8_t, kBlkElems> arep;
      for (unsigned q = 0; q < kRowBlk; ++q) {
        std::int32_t word;
        std::memcpy(&word, &a.m[(r + q) * kTile + kGroup * kb],
                    sizeof(word));
        const auto wrep = aie::broadcast<std::int32_t, kLanes, B>(word);
        std::memcpy(arep.data().data() + q * kRowElems, wrep.data().data(),
                    kRowElems);
      }
      acc = aie::mac_dot4<B>(acc, arep, bblk[kb]);
    }
    aie::store_v(&out.m[r * kTile], aie::srs<std::int32_t, B>(acc, 0));
  }
  return out;
}

/// Saturating requantize: int32 partials shift-round down to int8 (srs
/// round-half-up semantics), 16 lanes per row.
template <class B = aie::simd::backend>
[[nodiscard]] inline Tile8 requantize(const Tile32& c, int shift) {
  Tile8 out;
  for (unsigned r = 0; r < kTile; ++r) {
    const auto acc = aie::ups<aie::acc32_tag, B>(
        aie::load_v<kLanes>(&c.m[r * kTile]), 0);
    aie::store_v(&out.m[r * kTile], aie::srs<std::int8_t, B>(acc, shift));
  }
  return out;
}

/// bf16 tile product staged through fp32: widen B's rows, broadcast-MAC
/// in float accumulators, narrow the result rows with round-to-nearest.
template <class B = aie::simd::backend>
[[nodiscard]] inline TileBf multiply_tile_bf16(const TileBf& a,
                                               const TileBf& b) {
  TileBf c;
  // One scalar widen per A element feeding the broadcast MACs.
  aie::record(aie::OpClass::scalar, kTile * kTile);
  for (unsigned r = 0; r < kTile; ++r) {
    aie::accfloat<kLanes> acc{};
    for (unsigned k = 0; k < kTile; ++k) {
      const float s = aie::bf16_to_float(a.at(r, k));
      const auto brow = aie::to_float<B>(aie::load_v<kLanes>(&b.m[k * kTile]));
      acc = aie::mac<B>(acc, brow, s);
    }
    aie::store_v(&c.m[r * kTile], aie::to_bf16<B>(aie::to_vector<B>(acc)));
  }
  return c;
}

// Ping-pong window I/O on the tile streams: one tile per window.
inline constexpr cgsim::PortSettings kTileIo{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kTile * kTile)};

inline constexpr cgsim::PortSettings kShiftRtp{.rtp = true};

COMPUTE_KERNEL(aie, mlg_head,
               cgsim::KernelReadPort<TilePair8, apps::ml_gemm::kTileIo> ab,
               cgsim::KernelWritePort<Tile32> cas) {
  while (true) {
    const apps::ml_gemm::TilePair8 p = co_await ab.get();
    co_await cas.put(apps::ml_gemm::mac_tile(apps::ml_gemm::Tile32{}, p.a, p.b));
  }
}

COMPUTE_KERNEL(aie, mlg_cas,
               cgsim::KernelReadPort<TilePair8, apps::ml_gemm::kTileIo> ab,
               cgsim::KernelReadPort<Tile32> cin,
               cgsim::KernelWritePort<Tile32> cout) {
  while (true) {
    const apps::ml_gemm::TilePair8 p = co_await ab.get();
    const apps::ml_gemm::Tile32 c = co_await cin.get();
    co_await cout.put(apps::ml_gemm::mac_tile(c, p.a, p.b));
  }
}

COMPUTE_KERNEL(aie, mlg_requant,
               cgsim::KernelReadPort<Tile32> cin,
               cgsim::KernelReadPort<int, apps::ml_gemm::kShiftRtp> shift,
               cgsim::KernelWritePort<Tile8, apps::ml_gemm::kTileIo> out) {
  while (true) {
    const apps::ml_gemm::Tile32 c = co_await cin.get();
    const int s = co_await shift.get();
    co_await out.put(apps::ml_gemm::requantize(c, s));
  }
}

/// Two parallel split-K cascade chains (strips), each: head -> 3 cascade
/// stages -> requantize, 10 kernels total. Inputs s<strip>k<slice> carry
/// the (A, B) pair of K-slice `slice`; `shift0/1` are the requantize RTPs.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<TilePair8> s0k0, cgsim::IoConnector<TilePair8> s0k1,
    cgsim::IoConnector<TilePair8> s0k2, cgsim::IoConnector<TilePair8> s0k3,
    cgsim::IoConnector<TilePair8> s1k0, cgsim::IoConnector<TilePair8> s1k1,
    cgsim::IoConnector<TilePair8> s1k2, cgsim::IoConnector<TilePair8> s1k3,
    cgsim::IoConnector<int> shift0, cgsim::IoConnector<int> shift1) {
  s0k0.attr("plio_name", "MlGemmIn0");
  s1k0.attr("plio_name", "MlGemmIn4");
  cgsim::IoConnector<Tile32> c00, c01, c02, c03;
  cgsim::IoConnector<Tile32> c10, c11, c12, c13;
  cgsim::IoConnector<Tile8> out0, out1;
  mlg_head(s0k0, c00);
  mlg_cas(s0k1, c00, c01);
  mlg_cas(s0k2, c01, c02);
  mlg_cas(s0k3, c02, c03);
  mlg_requant(c03, shift0, out0);
  mlg_head(s1k0, c10);
  mlg_cas(s1k1, c10, c11);
  mlg_cas(s1k2, c11, c12);
  mlg_cas(s1k3, c12, c13);
  mlg_requant(c13, shift1, out1);
  out0.attr("plio_name", "MlGemmOut0");
  out1.attr("plio_name", "MlGemmOut1");
  return std::make_tuple(out0, out1);
}>;

/// Host-side driver: C = requant(A x B) for A of Mt x kCascade tiles and
/// B of kCascade x Nt tiles (K is fixed at the cascade depth, i.e. 64
/// elements). Output tiles stream row-major, interleaved across the two
/// strips by parity.
inline std::vector<Tile8> multiply_tiled(
    const std::vector<std::vector<Tile8>>& a_tiles,
    const std::vector<std::vector<Tile8>>& b_tiles, int shift) {
  const std::size_t cols = b_tiles[0].size();
  std::array<std::vector<TilePair8>, kStrips * kCascade> feeds;
  std::size_t total = 0;
  for (const auto& arow : a_tiles) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t strip = total % kStrips;
      ++total;
      for (std::size_t k = 0; k < kCascade; ++k) {
        feeds[strip * kCascade + k].push_back(
            TilePair8{arow[k], b_tiles[k][c]});
      }
    }
  }
  std::vector<Tile8> out0, out1;
  graph(feeds[0], feeds[1], feeds[2], feeds[3], feeds[4], feeds[5], feeds[6],
        feeds[7], shift, shift, out0, out1);
  std::vector<Tile8> out(total);
  for (std::size_t i = 0; i < total; ++i) {
    out[i] = (i % 2 == 0) ? out0[i / 2] : out1[i / 2];
  }
  return out;
}

/// Hand-written reference requantize: round-half-up shift + int8 clamp,
/// spelled out independently of the aie:: srs implementation.
[[nodiscard]] inline std::int8_t reference_requant(std::int32_t v, int shift) {
  std::int64_t r;
  if (shift <= 0) {
    r = static_cast<std::int64_t>(v) << -shift;
  } else {
    r = (static_cast<std::int64_t>(v) + (std::int64_t{1} << (shift - 1))) >>
        shift;
  }
  return static_cast<std::int8_t>(
      std::clamp<std::int64_t>(r, -128, 127));
}

/// Hand-written reference: exact int32 accumulation over the K tiles, then
/// the saturating requantize. Mirrors multiply_tiled's output ordering.
inline std::vector<Tile8> reference_multiply_tiled(
    const std::vector<std::vector<Tile8>>& a_tiles,
    const std::vector<std::vector<Tile8>>& b_tiles, int shift) {
  const std::size_t cols = b_tiles[0].size();
  std::vector<Tile8> out;
  for (const auto& arow : a_tiles) {
    for (std::size_t c = 0; c < cols; ++c) {
      Tile32 acc{};
      for (std::size_t k = 0; k < kCascade; ++k) {
        for (unsigned r = 0; r < kTile; ++r) {
          for (unsigned col = 0; col < kTile; ++col) {
            std::int32_t s = acc.at(r, col);
            for (unsigned kk = 0; kk < kTile; ++kk) {
              s += static_cast<std::int32_t>(arow[k].at(r, kk)) *
                   static_cast<std::int32_t>(b_tiles[k][c].at(kk, col));
            }
            acc.set(r, col, s);
          }
        }
      }
      Tile8 t;
      for (unsigned i = 0; i < kTile * kTile; ++i) {
        t.m[i] = reference_requant(acc.m[i], shift);
      }
      out.push_back(t);
    }
  }
  return out;
}

/// Float reference for the bf16 tile product (inputs widened exactly;
/// the tolerance to the bf16 kernel is the bf16 rounding step).
[[nodiscard]] inline apps::tile::Tile<float, kTile> reference_multiply_bf16(
    const TileBf& a, const TileBf& b) {
  apps::tile::Tile<float, kTile> c;
  for (unsigned r = 0; r < kTile; ++r) {
    for (unsigned col = 0; col < kTile; ++col) {
      float s = 0.0f;
      for (unsigned k = 0; k < kTile; ++k) {
        s += aie::bf16_to_float(a.at(r, k)) * aie::bf16_to_float(b.at(k, col));
      }
      c.set(r, col, s);
    }
  }
  return c;
}

}  // namespace apps::ml_gemm

// apps -- port of AMD's Vitis-Tutorials "bitonic-sorting" example
// (paper Section 5): a single-kernel graph implementing a 16-wide bitonic
// sort on 32-bit floats using the AIE vector API.
//
// The sorting network is expressed exactly the way the hand-optimized AIE
// version is: butterfly lane exchanges, vector min/max, and per-stage
// constant select masks (computed at compile time). One stream element is
// one 16-float block (64 bytes -- the Table 1 block size).
#pragma once

#include <array>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::bitonic {

using Block = aie::vector<float, 16>;

namespace detail {

/// Select mask for stage (k, j) of a 16-lane bitonic network: lane i takes
/// the min of (i, i^j) when the lane sorts ascending within its k-block and
/// is the lower partner -- or both conditions are inverted.
template <unsigned N>
constexpr std::array<bool, N> stage_take_min(unsigned k, unsigned j) {
  std::array<bool, N> take{};
  for (unsigned i = 0; i < N; ++i) {
    const bool ascending = (i & k) == 0;
    const bool lower = (i & j) == 0;
    take[i] = ascending == lower;
  }
  return take;
}

template <unsigned N>
aie::mask<N> to_mask(const std::array<bool, N>& bits) {
  aie::mask<N> m;
  for (unsigned i = 0; i < N; ++i) m.set(i, bits[i]);
  return m;
}

}  // namespace detail

namespace detail {

/// One compare-exchange stage: butterfly stride plus its select mask. The
/// masks depend only on (k, j) -- compile-time constants in the
/// hand-optimized kernel -- so the whole network is tabulated once and the
/// hot loop executes nothing but butterfly/min/max/select.
struct Stage {
  unsigned j;
  aie::mask<16> take;
};

inline const std::array<Stage, 10>& stages16() {
  static const std::array<Stage, 10> table = [] {
    std::array<Stage, 10> s{};
    unsigned n = 0;
    for (unsigned k = 2; k <= 16; k <<= 1)
      for (unsigned j = k >> 1; j >= 1; j >>= 1)
        s[n++] = Stage{j, to_mask<16>(stage_take_min<16>(k, j))};
    return s;
  }();
  return table;
}

}  // namespace detail

/// Sorts the 16 lanes of `v` ascending with a bitonic network
/// (10 compare-exchange stages, each one butterfly + min + max + select).
/// Backend-templated so the SIMD ablation bench can pin the execution
/// backend; results are bit-identical across backends.
template <class B = aie::simd::backend>
inline Block sort16(Block v) {
  for (const auto& [j, take] : detail::stages16()) {
    const Block partner = aie::butterfly<B>(v, j);
    const Block lo = aie::min<B>(v, partner);
    const Block hi = aie::max<B>(v, partner);
    v = aie::select<B>(lo, hi, take);
  }
  return v;
}

COMPUTE_KERNEL(aie, bitonic_sort16,
               cgsim::KernelReadPort<Block> in,
               cgsim::KernelWritePort<Block> out) {
  while (true) {
    co_await out.put(apps::bitonic::sort16(co_await in.get()));
  }
}

/// The complete single-kernel graph (stream I/O, as in the AMD original).
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Block> in) {
  in.attr("plio_name", "DataIn0");
  cgsim::IoConnector<Block> out;
  bitonic_sort16(in, out);
  out.attr("plio_name", "DataOut0");
  return std::make_tuple(out);
}>;

/// Scalar golden reference.
inline std::array<float, 16> reference_sort(std::array<float, 16> a) {
  std::sort(a.begin(), a.end());
  return a;
}

}  // namespace apps::bitonic

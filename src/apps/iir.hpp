// apps -- port of AMD's Vitis-Tutorials "implementing-iir-filter" (part 2b)
// example (paper Section 5): a SIMD biquad IIR filter maximizing throughput
// via bulk ping-pong window I/O.
//
// One stream element is one 2048-sample window (8192 bytes -- the Table 1
// block size). The feed-forward half is evaluated with vector MACs over
// 8-lane blocks; the feedback recurrence is applied with the scalar unit,
// as in AMD's vectorized formulation. Window (as opposed to per-beat
// stream) I/O is why this example reaches throughput parity after
// extraction (paper Table 1).
//
// The filter gain is a runtime parameter (RTP), exercising cgsim's
// runtime-parameter sources (paper Section 3.7).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::iir {

constexpr unsigned kBlockSamples = 2048;
constexpr unsigned kLanes = 8;

struct Block {
  std::array<float, kBlockSamples> samples{};

  bool operator==(const Block&) const = default;
};

/// Biquad coefficients (Direct Form I):
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
struct Coeffs {
  float b0, b1, b2, a1, a2;
};

/// The coefficient set AMD's tutorial uses for its Butterworth section.
inline constexpr Coeffs kDefaultCoeffs{0.0675f, 0.1349f, 0.0675f,
                                       -1.1430f, 0.4128f};

/// Filter state carried across windows.
struct State {
  float x1 = 0, x2 = 0, y1 = 0, y2 = 0;
};

/// Vectorized feed-forward half of the biquad: fir[n] = b0 x[n] + b1 x[n-1]
/// + b2 x[n-2] over 8-lane blocks, consuming/updating the carried x state.
/// Backend-templated so the SIMD ablation bench can pin the execution
/// backend; results are bit-identical across backends.
template <class B = aie::simd::backend>
inline std::array<float, kBlockSamples> feed_forward(const Block& in,
                                                     State& st,
                                                     const Coeffs& c) {
  std::array<float, kBlockSamples> fir{};
  // Previous-sample vectors reuse the carried state at the seam.
  std::array<float, kBlockSamples + 2> x;
  x[0] = st.x2;
  x[1] = st.x1;
  std::memcpy(&x[2], in.samples.data(), sizeof(in.samples));
  for (unsigned i = 0; i < kBlockSamples; i += kLanes) {
    const auto xn = aie::load_v<kLanes>(&x[i + 2]);
    const auto xm1 = aie::load_v<kLanes>(&x[i + 1]);
    const auto xm2 = aie::load_v<kLanes>(&x[i]);
    auto acc = aie::mul<B>(xn, c.b0);
    acc = aie::mac<B>(acc, xm1, c.b1);
    acc = aie::mac<B>(acc, xm2, c.b2);
    aie::store_v(&fir[i], aie::to_vector<B>(acc));
  }
  st.x2 = in.samples[kBlockSamples - 2];
  st.x1 = in.samples[kBlockSamples - 1];
  return fir;
}

/// Processes one window: vectorized feed-forward taps, scalar feedback.
template <class B = aie::simd::backend>
inline Block process_block(const Block& in, State& st, const Coeffs& c,
                           float gain) {
  Block out;
  const std::array<float, kBlockSamples> fir = feed_forward<B>(in, st, c);
  // Feedback recurrence on the scalar unit. The scalar-op accounting is
  // batched: one record() for the whole window instead of one per sample
  // (2 scalar MACs per sample), which keeps instrumentation off the inner
  // loop while producing identical OpCounts.
  aie::record(aie::OpClass::scalar, 2 * kBlockSamples);
  for (unsigned i = 0; i < kBlockSamples; ++i) {
    const float y = fir[i] - c.a1 * st.y1 - c.a2 * st.y2;
    st.y2 = st.y1;
    st.y1 = y;
    out.samples[i] = gain * y;
  }
  return out;
}

inline constexpr cgsim::PortSettings kWindowIo{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kBlockSamples)};

inline constexpr cgsim::PortSettings kGainRtp{.rtp = true};

COMPUTE_KERNEL(aie, iir_kernel,
               cgsim::KernelReadPort<Block, apps::iir::kWindowIo> in,
               cgsim::KernelReadPort<float, apps::iir::kGainRtp> gain,
               cgsim::KernelWritePort<Block, apps::iir::kWindowIo> out) {
  apps::iir::State st{};
  // Ping-pong window I/O: each suspension moves both in-flight windows
  // (the double-buffer capacity) through the channel in one bulk copy. The
  // gain RTP is sticky, so sampling it once per batch reads the same value
  // a per-window sample would.
  constexpr std::size_t kBatch = 2;
  std::array<apps::iir::Block, kBatch> blk{};
  std::array<apps::iir::Block, kBatch> res{};
  while (true) {
    const std::size_t got =
        co_await in.get_n(std::span<apps::iir::Block>{blk.data(), kBatch});
    const float g = co_await gain.get();
    for (std::size_t i = 0; i < got; ++i) {
      res[i] =
          apps::iir::process_block(blk[i], st, apps::iir::kDefaultCoeffs, g);
    }
    co_await out.put_n(std::span<const apps::iir::Block>{res.data(), got});
  }
}

/// Single-kernel graph: window-buffered data path plus a gain RTP.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Block> in, cgsim::IoConnector<float> gain) {
  in.attr("plio_name", "DataIn0").attr("buffering", "pingpong");
  cgsim::IoConnector<Block> out;
  iir_kernel(in, gain, out);
  out.attr("plio_name", "DataOut0").attr("buffering", "pingpong");
  return std::make_tuple(out);
}>;

/// Scalar golden reference over a contiguous sample stream.
inline std::vector<float> reference(const std::vector<float>& x,
                                    const Coeffs& c, float gain) {
  std::vector<float> y(x.size());
  State st{};
  for (std::size_t n = 0; n < x.size(); ++n) {
    const float fir = c.b0 * x[n] + c.b1 * st.x1 + c.b2 * st.x2;
    const float v = fir - c.a1 * st.y1 - c.a2 * st.y2;
    st.x2 = st.x1;
    st.x1 = x[n];
    st.y2 = st.y1;
    st.y1 = v;
    y[n] = gain * v;
  }
  return y;
}

}  // namespace apps::iir

// apps -- port of AMD's Vitis-Tutorials "Bilinear_Interpolation" example
// (paper Section 5): bilinear interpolation on image data using AIE vector
// intrinsics.
//
// One stream element carries 8 interpolation queries in structure-of-arrays
// form (four neighbouring pixel vectors + the fractional coordinates), the
// layout the hand-optimized AMD kernel consumes after its input shuffle
// stage. The kernel evaluates
//   p = (1-fx)(1-fy) p00 + fx (1-fy) p01 + (1-fx) fy p10 + fx fy p11
// entirely with vector MACs.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::bilinear {

constexpr unsigned kLanes = 8;
using V = aie::vector<float, kLanes>;

/// Eight bilinear queries: neighbour pixels and fractional offsets.
struct Packet {
  V p00, p01, p10, p11;
  V fx, fy;

  bool operator==(const Packet&) const = default;
};

/// Vectorized bilinear evaluation -- mirrors the MAC schedule of the
/// hand-optimized AMD kernel (two lerps in x, one lerp in y). The SIMD
/// execution backend is a template parameter so the ablation bench can pin
/// it; results are bit-identical across backends.
template <class B = aie::simd::backend>
inline V interpolate(const Packet& q) {
  const V one = aie::broadcast<float, kLanes, B>(1.0f);
  const V gx = aie::sub<B>(one, q.fx);
  const V gy = aie::sub<B>(one, q.fy);
  // top = p00*(1-fx) + p01*fx
  auto top = aie::mul<B>(q.p00, gx);
  top = aie::mac<B>(top, q.p01, q.fx);
  // bot = p10*(1-fx) + p11*fx
  auto bot = aie::mul<B>(q.p10, gx);
  bot = aie::mac<B>(bot, q.p11, q.fx);
  // out = top*(1-fy) + bot*fy
  auto out = aie::mul<B>(aie::to_vector<B>(top), gy);
  out = aie::mac<B>(out, aie::to_vector<B>(bot), q.fy);
  return aie::to_vector<B>(out);
}

COMPUTE_KERNEL(aie, bilinear_kernel,
               cgsim::KernelReadPort<Packet> in,
               cgsim::KernelWritePort<V> out) {
  // Window-style processing: one suspension moves a whole batch of queries
  // through the channel (bulk ring copies) instead of one element.
  constexpr std::size_t kBatch = 64;
  std::array<apps::bilinear::Packet, kBatch> q{};
  std::array<apps::bilinear::V, kBatch> r{};
  while (true) {
    const std::size_t got = co_await in.get_n(
        std::span<apps::bilinear::Packet>{q.data(), kBatch});
    for (std::size_t i = 0; i < got; ++i) {
      r[i] = apps::bilinear::interpolate(q[i]);
    }
    co_await out.put_n(std::span<const apps::bilinear::V>{r.data(), got});
  }
}

/// Single-kernel graph with PLIO stream I/O, as in the AMD original.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Packet> in) {
  in.attr("plio_name", "DataInImage");
  cgsim::IoConnector<V> out;
  bilinear_kernel(in, out);
  out.attr("plio_name", "DataOutPixels");
  return std::make_tuple(out);
}>;

/// Scalar golden reference for one query lane.
inline float reference_one(float p00, float p01, float p10, float p11,
                           float fx, float fy) {
  const float top = p00 * (1.0f - fx) + p01 * fx;
  const float bot = p10 * (1.0f - fx) + p11 * fx;
  return top * (1.0f - fy) + bot * fy;
}

inline std::array<float, kLanes> reference(const Packet& q) {
  std::array<float, kLanes> r{};
  for (unsigned i = 0; i < kLanes; ++i) {
    r[i] = reference_one(q.p00.get(i), q.p01.get(i), q.p10.get(i),
                         q.p11.get(i), q.fx.get(i), q.fy.get(i));
  }
  return r;
}

}  // namespace apps::bilinear

// apps -- symmetric FIR filter (additional application beyond the paper's
// four ported examples, built in the style of AMD's DSP tutorial kernels).
//
// A 16-tap linear-phase (symmetric) FIR over int16 samples in Q14: the
// kernel exploits coefficient symmetry with aie::sliding_mul_sym_ops,
// halving the MAC count -- the signature optimization of hand-written AIE
// FIR kernels -- and moves data in 2048-sample ping-pong windows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::fir {

constexpr unsigned kBlockSamples = 2048;
constexpr unsigned kLanes = 8;
constexpr unsigned kTaps = 16;
constexpr int kQ = 14;

struct Block {
  std::array<std::int16_t, kBlockSamples> s{};
  bool operator==(const Block&) const = default;
};

/// Symmetric low-pass prototype in Q14 (c[i] == c[kTaps-1-i]).
inline constexpr std::array<std::int16_t, kTaps> kCoeffs = {
    -61,  -133, -181, 52,   836,  2178, 3572, 4490,
    4490, 3572, 2178, 836,  52,   -181, -133, -61,
};
static_assert([] {
  for (unsigned i = 0; i < kTaps; ++i) {
    if (kCoeffs[i] != kCoeffs[kTaps - 1 - i]) return false;
  }
  return true;
}());

/// Carried filter history (last kTaps-1 input samples).
struct State {
  std::array<std::int16_t, kTaps - 1> tail{};
};

/// One window through the symmetric sliding MAC.
inline Block process_block(const Block& in, State& st) {
  Block out;
  std::array<std::int16_t, kBlockSamples + kTaps + kLanes> x{};
  for (unsigned i = 0; i < kTaps - 1; ++i) x[i] = st.tail[i];
  for (unsigned i = 0; i < kBlockSamples; ++i) x[kTaps - 1 + i] = in.s[i];

  aie::vector<std::int16_t, kTaps> coeff;
  for (unsigned j = 0; j < kTaps; ++j) coeff.set(j, kCoeffs[j]);

  for (unsigned i = 0; i < kBlockSamples; i += kLanes) {
    // 8 lanes x 16 taps need 23 consecutive samples: one 32-lane load.
    const auto data = aie::load_v<32>(&x[i]);
    const auto acc =
        aie::sliding_mul_sym_ops<kLanes, kTaps>::mul(coeff, 0u, data, 0u);
    aie::store_v(&out.s[i], aie::srs<std::int16_t>(acc, kQ));
  }
  for (unsigned i = 0; i < kTaps - 1; ++i) {
    st.tail[i] = in.s[kBlockSamples - (kTaps - 1) + i];
  }
  return out;
}

inline constexpr cgsim::PortSettings kWindowIo{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kBlockSamples)};

COMPUTE_KERNEL(aie, fir_sym16,
               cgsim::KernelReadPort<Block, apps::fir::kWindowIo> in,
               cgsim::KernelWritePort<Block, apps::fir::kWindowIo> out) {
  apps::fir::State st{};
  while (true) {
    co_await out.put(apps::fir::process_block(co_await in.get(), st));
  }
}

inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Block> in) {
  in.attr("plio_name", "FirIn0").attr("buffering", "pingpong");
  cgsim::IoConnector<Block> out;
  fir_sym16(in, out);
  out.attr("plio_name", "FirOut0");
  return std::make_tuple(out);
}>;

/// Scalar golden reference over a contiguous stream (zero prehistory).
inline std::vector<std::int16_t> reference(
    const std::vector<std::int16_t>& x) {
  std::vector<std::int16_t> y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::int64_t acc = 0;
    for (unsigned j = 0; j < kTaps; ++j) {
      const std::int64_t idx =
          static_cast<std::int64_t>(n) - (kTaps - 1) + j;
      const std::int16_t xv =
          idx < 0 ? std::int16_t{0} : x[static_cast<std::size_t>(idx)];
      acc += static_cast<std::int64_t>(kCoeffs[j]) * xv;
    }
    const std::int64_t rounded = (acc + (std::int64_t{1} << (kQ - 1))) >> kQ;
    y[n] = static_cast<std::int16_t>(
        std::clamp<std::int64_t>(rounded, -32768, 32767));
  }
  return y;
}

}  // namespace apps::fir

// apps -- 16-point radix-2 FFT (additional application; AMD's tutorial set
// includes FFT examples and the bitonic port already exercises the same
// butterfly data-movement primitives).
//
// One stream element is one 16-sample complex frame (split re/im planes,
// 128 bytes). The kernel runs an iterative decimation-in-time radix-2 FFT:
// a bit-reversal permute (aie::permute) followed by four butterfly stages,
// each built from lane-exchange (aie::butterfly), per-stage constexpr
// twiddle tables, and vector MAC arithmetic -- the structure of a
// hand-written AIE FFT stage.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::fft {

constexpr unsigned kN = 16;
using V = aie::vector<float, kN>;

/// One complex frame in split (planar) layout.
struct Frame {
  V re, im;
  bool operator==(const Frame&) const = default;
};

namespace detail {

consteval std::array<std::int32_t, kN> bit_reverse_table() {
  std::array<std::int32_t, kN> t{};
  for (unsigned i = 0; i < kN; ++i) {
    unsigned r = 0;
    for (unsigned b = 0; b < 4; ++b) r |= ((i >> b) & 1u) << (3 - b);
    t[i] = static_cast<std::int32_t>(r);
  }
  return t;
}

/// Twiddle factors for stage `s` (half-size = 2^s): lane i in the upper
/// half of each 2^(s+1) block multiplies by W = exp(-2*pi*j*k/2^(s+1)).
struct StageTwiddles {
  std::array<double, kN> re{}, im{};
};

inline StageTwiddles stage_twiddles(unsigned s) {
  StageTwiddles t;
  const unsigned m = 1u << (s + 1);  // butterfly block size
  for (unsigned i = 0; i < kN; ++i) {
    const unsigned k = i % m;
    if (k >= m / 2) {
      const double ang =
          -2.0 * std::numbers::pi * static_cast<double>(k - m / 2) /
          static_cast<double>(m);
      t.re[i] = std::cos(ang);
      t.im[i] = std::sin(ang);
    } else {
      t.re[i] = 1.0;
      t.im[i] = 0.0;
    }
  }
  return t;
}

}  // namespace detail

/// In-register 16-point FFT (DIT, radix 2).
inline Frame fft16(const Frame& in) {
  // Bit-reversal permutation.
  aie::vector<std::int32_t, kN> rev;
  constexpr auto table = detail::bit_reverse_table();
  for (unsigned i = 0; i < kN; ++i) rev.set(i, table[i]);
  V re = aie::permute(in.re, rev);
  V im = aie::permute(in.im, rev);

  for (unsigned s = 0; s < 4; ++s) {
    const unsigned half = 1u << s;
    const auto tw = detail::stage_twiddles(s);
    V wre, wim;
    aie::mask<kN> is_upper;
    for (unsigned i = 0; i < kN; ++i) {
      wre.set(i, static_cast<float>(tw.re[i]));
      wim.set(i, static_cast<float>(tw.im[i]));
      is_upper.set(i, (i & half) != 0);
    }
    // t = W * x  on the upper lanes (complex multiply, 4 MACs).
    auto tre_acc = aie::mul(re, wre);
    tre_acc = aie::msc(tre_acc, im, wim);
    auto tim_acc = aie::mul(re, wim);
    tim_acc = aie::mac(tim_acc, im, wre);
    const V tre = aie::to_vector(tre_acc);
    const V tim = aie::to_vector(tim_acc);
    // Partner exchange across the butterfly distance.
    const V pre = aie::butterfly(tre, half);
    const V pim = aie::butterfly(tim, half);
    // Lower lanes: x_lower + t_partner; upper lanes: x_partner_lower - t.
    // Expressed uniformly: out = select(x + p, p - t, lower?) with p the
    // exchanged value; on lower lanes p is the upper partner's t, on upper
    // lanes p is the lower partner's untouched x.
    const V xre = aie::butterfly(re, half);
    const V xim = aie::butterfly(im, half);
    V lo_re = aie::add(re, pre);
    V lo_im = aie::add(im, pim);
    V hi_re = aie::sub(xre, tre);
    V hi_im = aie::sub(xim, tim);
    aie::mask<kN> take_lower;
    for (unsigned i = 0; i < kN; ++i) take_lower.set(i, (i & half) == 0);
    re = aie::select(lo_re, hi_re, take_lower);
    im = aie::select(lo_im, hi_im, take_lower);
  }
  return Frame{re, im};
}

COMPUTE_KERNEL(aie, fft16_kernel,
               cgsim::KernelReadPort<Frame> in,
               cgsim::KernelWritePort<Frame> out) {
  while (true) {
    co_await out.put(apps::fft::fft16(co_await in.get()));
  }
}

inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Frame> in) {
  in.attr("plio_name", "FftIn0");
  cgsim::IoConnector<Frame> out;
  fft16_kernel(in, out);
  out.attr("plio_name", "FftOut0");
  return std::make_tuple(out);
}>;

/// O(N^2) reference DFT.
inline std::array<std::complex<double>, kN> reference_dft(
    const Frame& in) {
  std::array<std::complex<double>, kN> out{};
  for (unsigned k = 0; k < kN; ++k) {
    std::complex<double> acc{};
    for (unsigned n = 0; n < kN; ++n) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * n) /
                         static_cast<double>(kN);
      acc += std::complex<double>{in.re.get(n), in.im.get(n)} *
             std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace apps::fft

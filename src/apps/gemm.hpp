// apps -- tiled matrix multiplication (additional application, motivated
// by the paper's related work: PyAIE and Vyasa target exactly this class
// of tensor workloads on the AIE array).
//
// C = A x B over 16x16 float tiles with a split-K decomposition across two
// compute kernels: each kernel multiplies one half of the K dimension, and
// an accumulation kernel sums the partial tiles. The inner product runs on
// 8-lane vector MACs with broadcast-scalar reuse -- the standard AIE GEMM
// micro-kernel shape.
#pragma once

#include <array>
#include <vector>

#include "aie/aie.hpp"
#include "apps/tile.hpp"
#include "core/cgsim.hpp"

namespace apps::gemm {

constexpr unsigned kTile = 16;
constexpr unsigned kLanes = 8;

/// One row-major 16x16 float tile (1 KiB) -- the shared tile abstraction
/// (tile.hpp), also the base of the int8/bf16 ML GEMM.
using Tile = apps::tile::Tile<float, kTile>;

/// A paired (A, B) tile operand for one partial product.
using TilePair = apps::tile::TilePair<float, kTile>;

/// 16x16 tile product with 8-lane vector MACs (shared micro-kernel).
inline Tile multiply_tile(const Tile& a, const Tile& b) {
  return apps::tile::multiply_tile<kLanes>(a, b);
}

inline Tile add_tiles(const Tile& x, const Tile& y) {
  return apps::tile::add_tiles<aie::simd::backend, kLanes>(x, y);
}

COMPUTE_KERNEL(aie, gemm_half,
               cgsim::KernelReadPort<TilePair> in,
               cgsim::KernelWritePort<Tile> partial) {
  while (true) {
    const apps::gemm::TilePair p = co_await in.get();
    co_await partial.put(apps::gemm::multiply_tile(p.a, p.b));
  }
}

COMPUTE_KERNEL(aie, gemm_acc,
               cgsim::KernelReadPort<Tile> lo,
               cgsim::KernelReadPort<Tile> hi,
               cgsim::KernelWritePort<Tile> out) {
  while (true) {
    const apps::gemm::Tile x = co_await lo.get();
    const apps::gemm::Tile y = co_await hi.get();
    co_await out.put(apps::gemm::add_tiles(x, y));
  }
}

/// Split-K graph: input 0 carries the (A, B) pairs of K-half 0, input 1
/// those of K-half 1; the accumulator merges the partial products.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<TilePair> half0, cgsim::IoConnector<TilePair> half1) {
  half0.attr("plio_name", "GemmIn0");
  half1.attr("plio_name", "GemmIn1");
  cgsim::IoConnector<Tile> p0, p1, c;
  gemm_half(half0, p0);
  gemm_half(half1, p1);
  gemm_acc(p0, p1, c);
  c.attr("plio_name", "GemmOut");
  return std::make_tuple(c);
}>;

/// Scalar reference: one 16x16 tile product (shared reference helper).
inline Tile reference_multiply(const Tile& a, const Tile& b) {
  return apps::tile::reference_multiply<float>(a, b);
}

/// Host-side driver: multiplies (rows x K) by (K x cols) matrices given as
/// tile grids, streaming tile pairs through the split-K graph.
/// `a_tiles[r][k]` and `b_tiles[k][c]`; K (in tiles) must be even.
inline std::vector<Tile> multiply_tiled(
    const std::vector<std::vector<Tile>>& a_tiles,
    const std::vector<std::vector<Tile>>& b_tiles) {
  const std::size_t kdim = b_tiles.size();
  const std::size_t cols = b_tiles[0].size();
  std::vector<TilePair> half0, half1;
  std::size_t products = 0;
  for (const auto& arow : a_tiles) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Accumulate over K by streaming one pair per K-tile, alternating
      // halves; per (r, c) output, each half sums kdim/2 partials through
      // repeated passes below.
      for (std::size_t k = 0; k < kdim; k += 2) {
        half0.push_back(TilePair{arow[k], b_tiles[k][c]});
        half1.push_back(TilePair{arow[k + 1], b_tiles[k + 1][c]});
        ++products;
      }
    }
  }
  std::vector<Tile> partial_sums;
  graph(half0, half1, partial_sums);
  // Fold the kdim/2 streamed partials of every output tile.
  std::vector<Tile> out;
  std::size_t idx = 0;
  for (std::size_t r = 0; r < a_tiles.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Tile acc{};
      for (std::size_t k = 0; k < kdim; k += 2) {
        const Tile& p = partial_sums[idx++];
        for (unsigned i = 0; i < kTile * kTile; ++i) acc.m[i] += p.m[i];
      }
      out.push_back(acc);
    }
  }
  (void)products;
  return out;
}

}  // namespace apps::gemm

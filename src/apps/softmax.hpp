// apps -- int8/bf16 softmax pipeline: max-reduce, fixed-point exp
// approximation, normalize (the attention/classifier output stage of the
// AIE4ML-style NN layer set).
//
// The int8 path is exact integer arithmetic end to end, so results are
// bit-identical across execution backends and execution modes:
//
//   1. sm_max:  horizontal max-reduce over the 64 Q4 logits.
//   2. sm_exp:  e_i = 2^(-(max - x_i) * K / 2^15) in Q15 via the
//               fixed-point `exp2_neg_q15` (K = log2(e) * 2^15 / 2^4,
//               folding the Q4 logit scale into the exponent), plus the
//               horizontal sum-reduce of the 64 exponentials.
//   3. sm_norm: p_i = e_i * (2^30 / sum) >> 23, saturating to Q7 int8.
//
// The bf16 variant widens to fp32 vectors, uses libm's exp (identical on
// both backends), and narrows with round-to-nearest bf16 converts.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::softmax {

constexpr unsigned kN = 64;      ///< logits per block
constexpr unsigned kLanes = 16;  ///< vector lanes per step
constexpr int kInQ = 4;          ///< input logits are Q4 fixed point
/// round(log2(e) * 2^15 / 2^kInQ): Q4 logit deltas -> Q15 binary exponent.
constexpr std::int32_t kLog2eQ = 2955;

/// One block of 64 int8 Q4 logits (or Q7 probabilities on output).
struct Block {
  std::array<std::int8_t, kN> x{};
  bool operator==(const Block&) const = default;
};

/// Stage 1 -> 2: the block plus its max logit.
struct MaxBlock {
  Block b;
  std::int8_t max = 0;
  bool operator==(const MaxBlock&) const = default;
};

/// Stage 2 -> 3: Q15 exponentials plus their sum.
struct ExpBlock {
  std::array<std::int32_t, kN> e{};
  std::int32_t sum = 0;
  bool operator==(const ExpBlock&) const = default;
};

/// Horizontal max over the block: one kN-lane tree reduce.
template <class B = aie::simd::backend>
[[nodiscard]] inline std::int8_t block_max(const Block& b) {
  return aie::reduce_max<B>(aie::load_v<kN>(&b.x[0]));
}

/// Q15 exponentials of -(max - x_i) * K plus their horizontal sum. Every
/// stage runs at the full kN-lane block width, so each op amortizes over
/// the whole block.
template <class B = aie::simd::backend>
[[nodiscard]] inline ExpBlock block_exp(const Block& b, std::int8_t mx) {
  ExpBlock r;
  const auto vmax = aie::broadcast<std::int32_t, kN, B>(mx);
  const auto d = aie::unpack<std::int32_t, B>(aie::load_v<kN>(&b.x[0]));
  const auto nd = aie::sub<B>(vmax, d);  // >= 0 by construction
  // nd * K <= 255 * 2966 fits int32 lanes exactly.
  const auto u = aie::srs<std::int32_t, B>(aie::mul<B>(nd, kLog2eQ), 0);
  const auto e = aie::exp2_neg_q15<B>(u);
  aie::store_v(&r.e[0], e);
  r.sum = aie::reduce_add<B>(e);
  return r;
}

/// Normalize: p_i = e_i * (2^30 / sum) >> 23, saturating into Q7 int8.
template <class B = aie::simd::backend>
[[nodiscard]] inline Block block_norm(const ExpBlock& eb) {
  Block out;
  const auto recip = static_cast<std::int32_t>(
      (std::int64_t{1} << 30) / std::max(eb.sum, 1));
  aie::record(aie::OpClass::scalar, 1);  // the reciprocal divide
  const auto e = aie::load_v<kN>(&eb.e[0]);
  const auto p = aie::mul<B>(e, recip);  // int64 accumulator, exact
  aie::store_v(&out.x[0], aie::srs<std::int8_t, B>(p, 23));
  return out;
}

/// Whole pipeline on one block (the bench/test kernel body).
template <class B = aie::simd::backend>
[[nodiscard]] inline Block softmax_block(const Block& b) {
  return block_norm<B>(block_exp<B>(b, block_max<B>(b)));
}

/// bf16 softmax staged through fp32 vectors; exp on libm (deterministic,
/// backend-independent), bf16 narrows with round-to-nearest.
template <class B = aie::simd::backend>
[[nodiscard]] inline std::array<aie::bf16, kN> softmax_bf16(
    const std::array<aie::bf16, kN>& in) {
  std::array<float, kN> f{};
  for (unsigned i = 0; i < kN; i += kLanes) {
    const auto v = aie::to_float<B>(aie::load_v<kLanes>(&in[i]));
    aie::store_v(&f[i], v);
  }
  float mx = f[0];
  for (unsigned i = 1; i < kN; ++i) mx = std::max(mx, f[i]);
  aie::record(aie::OpClass::scalar, 2 * kN);  // max scan + exp evaluations
  float sum = 0.0f;
  std::array<float, kN> e{};
  for (unsigned i = 0; i < kN; ++i) {
    e[i] = std::exp(f[i] - mx);
    sum += e[i];
  }
  const float inv = 1.0f / sum;
  std::array<aie::bf16, kN> out{};
  for (unsigned i = 0; i < kN; i += kLanes) {
    const auto p = aie::mul<B>(aie::load_v<kLanes>(&e[i]), inv);
    aie::store_v(&out[i], aie::to_bf16<B>(aie::to_vector<B>(p)));
  }
  return out;
}

// Ping-pong window I/O on the block streams: one block per window.
inline constexpr cgsim::PortSettings kBlockIo{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kN)};

COMPUTE_KERNEL(aie, sm_max,
               cgsim::KernelReadPort<Block, apps::softmax::kBlockIo> in,
               cgsim::KernelWritePort<MaxBlock> out) {
  while (true) {
    const apps::softmax::Block b = co_await in.get();
    co_await out.put(
        apps::softmax::MaxBlock{b, apps::softmax::block_max(b)});
  }
}

COMPUTE_KERNEL(aie, sm_exp,
               cgsim::KernelReadPort<MaxBlock> in,
               cgsim::KernelWritePort<ExpBlock> out) {
  while (true) {
    const apps::softmax::MaxBlock mb = co_await in.get();
    co_await out.put(apps::softmax::block_exp(mb.b, mb.max));
  }
}

COMPUTE_KERNEL(aie, sm_norm,
               cgsim::KernelReadPort<ExpBlock> in,
               cgsim::KernelWritePort<Block, apps::softmax::kBlockIo> out) {
  while (true) {
    const apps::softmax::ExpBlock eb = co_await in.get();
    co_await out.put(apps::softmax::block_norm(eb));
  }
}

/// Three-kernel pipeline: max-reduce -> exp -> normalize.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Block> in) {
  in.attr("plio_name", "SoftmaxIn0");
  cgsim::IoConnector<MaxBlock> mb;
  cgsim::IoConnector<ExpBlock> eb;
  cgsim::IoConnector<Block> out;
  sm_max(in, mb);
  sm_exp(mb, eb);
  sm_norm(eb, out);
  out.attr("plio_name", "SoftmaxOut0");
  return std::make_tuple(out);
}>;

/// Hand-written integer reference: the same fixed-point pipeline spelled
/// out in plain scalar C++ (poly coefficients restated independently).
[[nodiscard]] inline std::int32_t reference_exp2_neg_q15(std::int32_t u) {
  if (u < 0) u = 0;
  const std::int32_t n = u >> 15;
  const std::int32_t f = u & 32767;
  if (f == 0) return 32768 >> std::min(n, 31);
  const std::int32_t x = 32768 - f;
  std::int32_t t = 2603;
  t = 7354 + ((t * x) >> 15);
  t = 22803 + ((t * x) >> 15);
  const std::int32_t p = 32768 + ((t * x) >> 15);
  return p >> std::min(n + 1, 31);
}

[[nodiscard]] inline Block reference_softmax(const Block& b) {
  std::int8_t mx = b.x[0];
  for (unsigned i = 1; i < kN; ++i) mx = std::max(mx, b.x[i]);
  std::array<std::int32_t, kN> e{};
  std::int32_t sum = 0;
  for (unsigned i = 0; i < kN; ++i) {
    const std::int32_t nd = static_cast<std::int32_t>(mx) - b.x[i];
    e[i] = reference_exp2_neg_q15(nd * kLog2eQ);
    sum += e[i];
  }
  const std::int32_t recip = static_cast<std::int32_t>(
      (std::int64_t{1} << 30) / std::max(sum, 1));
  Block out;
  for (unsigned i = 0; i < kN; ++i) {
    const std::int64_t p =
        (static_cast<std::int64_t>(e[i]) * recip + (std::int64_t{1} << 22)) >>
        23;
    out.x[i] = static_cast<std::int8_t>(std::clamp<std::int64_t>(p, -128, 127));
  }
  return out;
}

/// Float reference softmax over the widened Q4 logits (semantic oracle for
/// the fixed-point path; compared with tolerance in the tests).
[[nodiscard]] inline std::array<float, kN> reference_softmax_float(
    const Block& b) {
  float mx = b.x[0];
  for (unsigned i = 1; i < kN; ++i) mx = std::max(mx, static_cast<float>(b.x[i]));
  std::array<float, kN> e{};
  float sum = 0.0f;
  for (unsigned i = 0; i < kN; ++i) {
    e[i] = std::exp((static_cast<float>(b.x[i]) - mx) /
                    static_cast<float>(1 << kInQ));
    sum += e[i];
  }
  for (unsigned i = 0; i < kN; ++i) e[i] /= sum;
  return e;
}

}  // namespace apps::softmax

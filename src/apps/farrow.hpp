// apps -- port of AMD's Vitis-Tutorials "farrow_filter" example
// (paper Section 5): a fractional-delay Farrow filter [Farrow 1988] built
// from two kernels with ping-pong buffer I/O between them and
// hand-optimized fixed-point SIMD convolution.
//
//   kernel 1 (farrow_branches): four 8-tap FIR branch filters evaluated
//     with sliding vector MACs over int16 samples (Q14 coefficients).
//   kernel 2 (farrow_combine): Horner evaluation of the delay polynomial
//     y = ((b3*mu + b2)*mu + b1)*mu + b0 with a per-sample Q14 fractional
//     delay mu, using vector MAC + shift-round-saturate.
//
// One stream element is one 2048-sample window (4096 bytes -- the Table 1
// block size).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::farrow {

constexpr unsigned kBlockSamples = 2048;
constexpr unsigned kLanes = 8;
constexpr unsigned kTaps = 8;
constexpr int kQ = 14;  ///< fixed-point fraction bits

struct SampleBlock {
  std::array<std::int16_t, kBlockSamples> s{};
  bool operator==(const SampleBlock&) const = default;
};

struct MuBlock {
  std::array<std::int16_t, kBlockSamples> mu{};  // Q14 in [0, 1)
  bool operator==(const MuBlock&) const = default;
};

/// Outputs of the four polynomial branch filters for one window.
struct BranchBlock {
  std::array<std::int16_t, kBlockSamples> b0{}, b1{}, b2{}, b3{};
  bool operator==(const BranchBlock&) const = default;
};

/// Q14 branch filter coefficients of a cubic-Lagrange Farrow structure,
/// laid out as in the AMD example (branch-major).
inline constexpr std::array<std::array<std::int16_t, kTaps>, 4> kCoeffs = {{
    {0, 0, 0, 16384, 0, 0, 0, 0},             // b0: passthrough tap
    {135, -910, 3786, -1330, -2230, 780, -250, 19},   // b1
    {-64, 501, -2623, 4055, -2230, 430, -80, 11},     // b2
    {21, -169, 1542, -2767, 1618, -290, 52, -7},      // b3
}};

/// Filter state: the last kTaps-1 input samples of the previous window.
struct BranchState {
  std::array<std::int16_t, kTaps - 1> tail{};
};

/// Kernel-1 math: four 8-tap FIRs with 8-lane sliding MACs (Q14 -> Q14).
/// Backend-templated so the SIMD ablation bench can pin the execution
/// backend; results are bit-identical across backends.
template <class B = aie::simd::backend>
inline BranchBlock branch_filters(const SampleBlock& in, BranchState& st) {
  BranchBlock out;
  // History-extended sample buffer so lane n sees samples [n-7 .. n];
  // one trailing pad element keeps the 16-lane vector loads in bounds.
  std::array<std::int16_t, kBlockSamples + kTaps + kLanes> x;
  for (unsigned i = 0; i < kTaps - 1; ++i) x[i] = st.tail[i];
  std::memcpy(&x[kTaps - 1], in.s.data(), sizeof(in.s));
  for (unsigned i = kBlockSamples + kTaps - 1; i < x.size(); ++i) x[i] = 0;

  std::array<std::array<std::int16_t, kBlockSamples>*, 4> dst{
      &out.b0, &out.b1, &out.b2, &out.b3};
  // Coefficient vectors depend only on kCoeffs: built once, not per window.
  static const std::array<aie::vector<std::int16_t, kTaps>, 4> coeff = [] {
    std::array<aie::vector<std::int16_t, kTaps>, 4> c{};
    for (unsigned k = 0; k < 4; ++k)
      for (unsigned j = 0; j < kTaps; ++j) c[k].set(j, kCoeffs[k][j]);
    return c;
  }();

  for (unsigned i = 0; i < kBlockSamples; i += kLanes) {
    // kLanes+kTaps-1 consecutive samples cover all lanes; loaded as 2*kLanes.
    const auto data = aie::load_v<2 * kLanes>(&x[i]);
    for (unsigned k = 0; k < 4; ++k) {
      auto acc = aie::sliding_mul_ops<kLanes, kTaps, 1, 1, 1, B>::mul(
          coeff[k], 0u, data, 0u);
      aie::store_v(&(*dst[k])[i],
                   aie::srs<std::int16_t, B>(acc, kQ));
    }
  }
  for (unsigned i = 0; i < kTaps - 1; ++i) {
    st.tail[i] = in.s[kBlockSamples - (kTaps - 1) + i];
  }
  return out;
}

/// Kernel-2 math: Horner combine with per-sample Q14 fractional delay.
template <class B = aie::simd::backend>
inline SampleBlock combine(const BranchBlock& br, const MuBlock& mu) {
  SampleBlock out;
  for (unsigned i = 0; i < kBlockSamples; i += kLanes) {
    const auto m = aie::load_v<kLanes>(&mu.mu[i]);
    const auto v3 = aie::load_v<kLanes>(&br.b3[i]);
    const auto v2 = aie::load_v<kLanes>(&br.b2[i]);
    const auto v1 = aie::load_v<kLanes>(&br.b1[i]);
    const auto v0 = aie::load_v<kLanes>(&br.b0[i]);
    // h = b3*mu + b2   (Q14*Q14 -> srs -> Q14)
    auto h = aie::srs<std::int16_t, B>(
        aie::mac<B>(aie::ups<aie::acc48_tag, B>(v2, kQ), v3, m), kQ);
    h = aie::srs<std::int16_t, B>(
        aie::mac<B>(aie::ups<aie::acc48_tag, B>(v1, kQ), h, m), kQ);
    h = aie::srs<std::int16_t, B>(
        aie::mac<B>(aie::ups<aie::acc48_tag, B>(v0, kQ), h, m), kQ);
    aie::store_v(&out.s[i], h);
  }
  return out;
}

inline constexpr cgsim::PortSettings kPingPong{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kBlockSamples)};

COMPUTE_KERNEL(aie, farrow_branches,
               cgsim::KernelReadPort<SampleBlock> in,
               cgsim::KernelWritePort<BranchBlock,
                                      apps::farrow::kPingPong> branches) {
  apps::farrow::BranchState st{};
  // Bulk window pairs: one suspension moves both ping-pong windows. The
  // carried filter state is applied in stream order within the batch.
  constexpr std::size_t kBatch = 2;
  std::array<apps::farrow::SampleBlock, kBatch> blk{};
  std::array<apps::farrow::BranchBlock, kBatch> br{};
  while (true) {
    const std::size_t got = co_await in.get_n(
        std::span<apps::farrow::SampleBlock>{blk.data(), kBatch});
    for (std::size_t i = 0; i < got; ++i) {
      br[i] = apps::farrow::branch_filters(blk[i], st);
    }
    co_await branches.put_n(
        std::span<const apps::farrow::BranchBlock>{br.data(), got});
  }
}

COMPUTE_KERNEL(aie, farrow_combine,
               cgsim::KernelReadPort<BranchBlock,
                                     apps::farrow::kPingPong> branches,
               cgsim::KernelReadPort<MuBlock> mu,
               cgsim::KernelWritePort<SampleBlock> out) {
  // Consume branch windows and delay windows in lockstep, a ping-pong pair
  // per suspension.
  constexpr std::size_t kBatch = 2;
  std::array<apps::farrow::BranchBlock, kBatch> br{};
  std::array<apps::farrow::MuBlock, kBatch> m{};
  std::array<apps::farrow::SampleBlock, kBatch> res{};
  while (true) {
    const std::size_t got = co_await branches.get_n(
        std::span<apps::farrow::BranchBlock>{br.data(), kBatch});
    const std::size_t mgot =
        co_await mu.get_n(std::span<apps::farrow::MuBlock>{m.data(), got});
    const std::size_t pairs = got < mgot ? got : mgot;
    for (std::size_t i = 0; i < pairs; ++i) {
      res[i] = apps::farrow::combine(br[i], m[i]);
    }
    co_await out.put_n(
        std::span<const apps::farrow::SampleBlock>{res.data(), pairs});
  }
}

/// Two-kernel graph: stream I/O at the boundary, ping-pong window between
/// the branch filters and the combiner (as in the AMD original).
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<SampleBlock> in, cgsim::IoConnector<MuBlock> mu) {
  in.attr("plio_name", "DataIn0");
  mu.attr("plio_name", "DelayIn0");
  cgsim::IoConnector<BranchBlock> branches;
  cgsim::IoConnector<SampleBlock> out;
  farrow_branches(in, branches);
  farrow_combine(branches, mu, out);
  out.attr("plio_name", "DataOut0");
  return std::make_tuple(out);
}>;

// ---------- scalar golden reference ----------

[[nodiscard]] inline std::int16_t sat16(std::int64_t v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

[[nodiscard]] inline std::int16_t q14_round(std::int64_t v) {
  return sat16((v + (std::int64_t{1} << (kQ - 1))) >> kQ);
}

/// Bit-exact scalar model of branch_filters + combine over a full stream.
inline std::vector<std::int16_t> reference(
    const std::vector<std::int16_t>& x, const std::vector<std::int16_t>& mu) {
  std::vector<std::int16_t> y(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::array<std::int16_t, 4> b{};
    for (unsigned k = 0; k < 4; ++k) {
      std::int64_t acc = 0;
      for (unsigned j = 0; j < kTaps; ++j) {
        // Matches the windowed layout: lane n reads x[n-7+j].
        const std::int64_t idx =
            static_cast<std::int64_t>(n) - (kTaps - 1) + j;
        const std::int16_t xv = idx < 0 ? std::int16_t{0}
                                        : x[static_cast<std::size_t>(idx)];
        acc += static_cast<std::int64_t>(kCoeffs[k][j]) * xv;
      }
      b[k] = q14_round(acc);
    }
    const std::int64_t m = mu[n];
    std::int64_t h = b[3];
    h = q14_round((static_cast<std::int64_t>(b[2]) << kQ) + h * m);
    h = q14_round((static_cast<std::int64_t>(b[1]) << kQ) + h * m);
    h = q14_round((static_cast<std::int64_t>(b[0]) << kQ) + h * m);
    y[n] = static_cast<std::int16_t>(h);
  }
  return y;
}

}  // namespace apps::farrow

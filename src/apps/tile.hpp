// apps -- shared square-tile abstraction for the GEMM-family workloads.
//
// One Tile<T, Dim> is a row-major Dim x Dim matrix block. The float demo
// GEMM (gemm.hpp) and the int8/bf16 ML GEMM (ml_gemm.hpp) build on the same
// tile type, micro-kernel and reference helpers, so there is exactly one
// tile implementation in the tree.
#pragma once

#include <array>

#include "aie/aie.hpp"

namespace apps::tile {

/// Row-major Dim x Dim matrix block of element type T.
template <class T, unsigned Dim>
struct Tile {
  using value_type = T;
  static constexpr unsigned dim = Dim;

  std::array<T, Dim * Dim> m{};

  [[nodiscard]] T at(unsigned r, unsigned c) const { return m[r * Dim + c]; }
  void set(unsigned r, unsigned c, T v) { m[r * Dim + c] = v; }
  bool operator==(const Tile&) const = default;
};

/// A paired (A, B) tile operand for one partial product.
template <class T, unsigned Dim>
struct TilePair {
  Tile<T, Dim> a, b;
  bool operator==(const TilePair&) const = default;
};

/// Float tile product with Lanes-wide vector MACs: for each row of A, the
/// scalar A(r,k) broadcasts against B's row k, accumulating C's row r in
/// Dim/Lanes accumulator registers -- the standard AIE GEMM micro-kernel
/// shape. Accumulation order is fixed, so results are bit-identical across
/// execution backends.
template <unsigned Lanes = 8, class B = aie::simd::backend, unsigned Dim>
[[nodiscard]] inline Tile<float, Dim> multiply_tile(const Tile<float, Dim>& a,
                                                    const Tile<float, Dim>& b) {
  static_assert(Dim % Lanes == 0);
  Tile<float, Dim> c;
  for (unsigned r = 0; r < Dim; ++r) {
    std::array<aie::accfloat<Lanes>, Dim / Lanes> acc{};
    for (unsigned k = 0; k < Dim; ++k) {
      const float s = a.at(r, k);
      for (unsigned blk = 0; blk < Dim / Lanes; ++blk) {
        acc[blk] = aie::mac<B>(
            acc[blk], aie::load_v<Lanes>(&b.m[k * Dim + blk * Lanes]), s);
      }
    }
    for (unsigned blk = 0; blk < Dim / Lanes; ++blk) {
      aie::store_v(&c.m[r * Dim + blk * Lanes], aie::to_vector<B>(acc[blk]));
    }
  }
  return c;
}

/// Lane-wise tile sum over Lanes-wide vector adds.
template <class B = aie::simd::backend, unsigned Lanes = 8, class T,
          unsigned Dim>
[[nodiscard]] inline Tile<T, Dim> add_tiles(const Tile<T, Dim>& x,
                                            const Tile<T, Dim>& y) {
  static_assert((Dim * Dim) % Lanes == 0);
  Tile<T, Dim> c;
  for (unsigned i = 0; i < Dim * Dim; i += Lanes) {
    const auto vx = aie::load_v<Lanes>(&x.m[i]);
    const auto vy = aie::load_v<Lanes>(&y.m[i]);
    aie::store_v(&c.m[i], aie::add<B>(vx, vy));
  }
  return c;
}

/// Scalar reference tile product accumulating in Acc (float demo GEMM:
/// Acc = float; int8 ML GEMM: Acc = int32 for exact 32-bit accumulation).
template <class Acc, class T, unsigned Dim>
[[nodiscard]] inline Tile<Acc, Dim> reference_multiply(const Tile<T, Dim>& a,
                                                       const Tile<T, Dim>& b) {
  Tile<Acc, Dim> c;
  for (unsigned r = 0; r < Dim; ++r) {
    for (unsigned col = 0; col < Dim; ++col) {
      Acc s{};
      for (unsigned k = 0; k < Dim; ++k) {
        s = s + static_cast<Acc>(a.at(r, k)) * static_cast<Acc>(b.at(k, col));
      }
      c.set(r, col, s);
    }
  }
  return c;
}

}  // namespace apps::tile

// apps -- int8 3x3 conv2d, im2col-free, with shift-register row buffering
// (the AIE4ML-style NN convolution layer).
//
// Each of the kChannels input channels streams its image rows into one
// kernel; the kernel keeps the last two rows in a line-buffer shift
// register (no im2col materialization) and evaluates the 9 taps as
// broadcast-scalar MACs into int32 accumulator lanes over zero-padded
// rows. Channels chain cascade-style: every kernel MACs its channel's
// contribution onto the int32 partial row streamed from the previous
// channel, and the last kernel requantizes to int8 with the saturating
// shift-round (srs). Per-channel 3x3 weights arrive as RTP structs.
//
// Valid vertically (H rows in -> H-2 rows out), zero-padded horizontally
// (width preserved).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace apps::conv2d {

constexpr unsigned kW = 64;        ///< row width in pixels
constexpr unsigned kChannels = 4;  ///< input channels (cascade depth)
constexpr int kShift = 7;          ///< requantize shift of the output stage

/// One int8 image row.
struct Row {
  std::array<std::int8_t, kW> px{};
  bool operator==(const Row&) const = default;
};

/// One int32 partial row on the cascade.
struct PartialRow {
  std::array<std::int32_t, kW> px{};
  bool operator==(const PartialRow&) const = default;
};

/// Per-channel 3x3 weights (row-major, 9 used; padded for alignment).
struct Weights {
  std::array<std::int8_t, 16> w{};
  bool operator==(const Weights&) const = default;
};

/// A row with one zero pixel of horizontal padding on each side.
using Padded = std::array<std::int8_t, kW + 2>;

[[nodiscard]] inline Padded pad_row(const Row& r) {
  Padded p{};
  std::memcpy(&p[1], r.px.data(), kW);
  return p;
}

/// 3x3 taps over three padded rows accumulated into int32 lanes on top of
/// `base` (nullptr for the first cascade element). Tap order is fixed
/// (dy-major), so results are bit-identical across backends.
template <class B = aie::simd::backend>
[[nodiscard]] inline PartialRow conv_row(const Padded& r0, const Padded& r1,
                                         const Padded& r2, const Weights& w,
                                         const PartialRow* base) {
  PartialRow out;
  const Padded* rows[3] = {&r0, &r1, &r2};
  // One accumulator spans the whole row: each tap is a single kW-lane
  // broadcast MAC, so the 9-tap dependency chain is paid once per row
  // instead of once per 16-lane step.
  aie::acc32<kW> acc;
  if (base != nullptr) {
    acc = aie::ups<aie::acc32_tag, B>(aie::load_v<kW>(&base->px[0]), 0);
  }
  for (unsigned dy = 0; dy < 3; ++dy) {
    for (unsigned dx = 0; dx < 3; ++dx) {
      acc = aie::mac<B>(acc, aie::load_v<kW>(&(*rows[dy])[dx]),
                        static_cast<std::int32_t>(w.w[dy * 3 + dx]));
    }
  }
  aie::store_v(&out.px[0], aie::srs<std::int32_t, B>(acc, 0));
  return out;
}

/// Requantizes a full int32 partial row down to int8 (srs semantics).
template <class B = aie::simd::backend>
[[nodiscard]] inline Row requant_row(const PartialRow& p, int shift) {
  Row out;
  const auto acc = aie::ups<aie::acc32_tag, B>(aie::load_v<kW>(&p.px[0]), 0);
  aie::store_v(&out.px[0], aie::srs<std::int8_t, B>(acc, shift));
  return out;
}

/// Line-buffer shift register: the two most recent padded rows.
struct LineState {
  Padded r0{}, r1{};
  unsigned seen = 0;

  /// Pushes a new padded row; returns true once a full 3-row window exists.
  bool push(const Padded& next) {
    const bool full = seen >= 2;
    if (!full) {
      (seen == 0 ? r0 : r1) = next;
    }
    ++seen;
    return full;
  }
  void shift(const Padded& next) {
    r0 = r1;
    r1 = next;
  }
};

// Ping-pong window I/O on the row streams: one row per window.
inline constexpr cgsim::PortSettings kRowIo{
    .beat_bits = 0,
    .rtp = false,
    .buffer = cgsim::BufferMode::pingpong,
    .window_size = static_cast<int>(kW)};

inline constexpr cgsim::PortSettings kWeightsRtp{.rtp = true};

COMPUTE_KERNEL(aie, conv_head,
               cgsim::KernelReadPort<Row, apps::conv2d::kRowIo> in,
               cgsim::KernelReadPort<Weights, apps::conv2d::kWeightsRtp> wr,
               cgsim::KernelWritePort<PartialRow> cas) {
  apps::conv2d::LineState st{};
  while (true) {
    const apps::conv2d::Padded cur =
        apps::conv2d::pad_row(co_await in.get());
    const apps::conv2d::Weights w = co_await wr.get();
    if (st.push(cur)) {
      co_await cas.put(apps::conv2d::conv_row(st.r0, st.r1, cur, w, nullptr));
      st.shift(cur);
    }
  }
}

COMPUTE_KERNEL(aie, conv_mid,
               cgsim::KernelReadPort<Row, apps::conv2d::kRowIo> in,
               cgsim::KernelReadPort<Weights, apps::conv2d::kWeightsRtp> wr,
               cgsim::KernelReadPort<PartialRow> cin,
               cgsim::KernelWritePort<PartialRow> cout) {
  apps::conv2d::LineState st{};
  while (true) {
    const apps::conv2d::Padded cur =
        apps::conv2d::pad_row(co_await in.get());
    const apps::conv2d::Weights w = co_await wr.get();
    if (st.push(cur)) {
      const apps::conv2d::PartialRow base = co_await cin.get();
      co_await cout.put(apps::conv2d::conv_row(st.r0, st.r1, cur, w, &base));
      st.shift(cur);
    }
  }
}

COMPUTE_KERNEL(aie, conv_tail,
               cgsim::KernelReadPort<Row, apps::conv2d::kRowIo> in,
               cgsim::KernelReadPort<Weights, apps::conv2d::kWeightsRtp> wr,
               cgsim::KernelReadPort<PartialRow> cin,
               cgsim::KernelWritePort<Row, apps::conv2d::kRowIo> out) {
  apps::conv2d::LineState st{};
  while (true) {
    const apps::conv2d::Padded cur =
        apps::conv2d::pad_row(co_await in.get());
    const apps::conv2d::Weights w = co_await wr.get();
    if (st.push(cur)) {
      const apps::conv2d::PartialRow base = co_await cin.get();
      const apps::conv2d::PartialRow full =
          apps::conv2d::conv_row(st.r0, st.r1, cur, w, &base);
      co_await out.put(apps::conv2d::requant_row(full, apps::conv2d::kShift));
      st.shift(cur);
    }
  }
}

/// Channel cascade: head -> 2 mid stages -> tail (4 kernels). Input i
/// carries channel i's rows; weights arrive per channel as RTPs.
inline constexpr auto graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<Row> in0, cgsim::IoConnector<Row> in1,
    cgsim::IoConnector<Row> in2, cgsim::IoConnector<Row> in3,
    cgsim::IoConnector<Weights> w0, cgsim::IoConnector<Weights> w1,
    cgsim::IoConnector<Weights> w2, cgsim::IoConnector<Weights> w3) {
  in0.attr("plio_name", "ConvIn0");
  cgsim::IoConnector<PartialRow> c0, c1, c2;
  cgsim::IoConnector<Row> out;
  conv_head(in0, w0, c0);
  conv_mid(in1, w1, c0, c1);
  conv_mid(in2, w2, c1, c2);
  conv_tail(in3, w3, c2, out);
  out.attr("plio_name", "ConvOut0");
  return std::make_tuple(out);
}>;

/// Host-side driver: H rows per channel in, H-2 requantized rows out.
inline std::vector<Row> run(
    const std::array<std::vector<Row>, kChannels>& img,
    const std::array<Weights, kChannels>& w) {
  std::vector<Row> out;
  graph(img[0], img[1], img[2], img[3], w[0], w[1], w[2], w[3], out);
  return out;
}

/// Hand-written reference: plain integer loops, zero-padded horizontally,
/// valid vertically, round-half-up shift + int8 clamp at the end.
inline std::vector<Row> reference(
    const std::array<std::vector<Row>, kChannels>& img,
    const std::array<Weights, kChannels>& w) {
  const std::size_t h = img[0].size();
  std::vector<Row> out;
  for (std::size_t y = 1; y + 1 < h; ++y) {
    Row o;
    for (unsigned x = 0; x < kW; ++x) {
      std::int32_t acc = 0;
      for (unsigned ch = 0; ch < kChannels; ++ch) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int xx = static_cast<int>(x) + dx;
            const std::int32_t px =
                (xx < 0 || xx >= static_cast<int>(kW))
                    ? 0
                    : img[ch][y + static_cast<std::size_t>(dy)]
                          .px[static_cast<unsigned>(xx)];
            acc += static_cast<std::int32_t>(
                       w[ch].w[static_cast<unsigned>((dy + 1) * 3 + (dx + 1))]) *
                   px;
          }
        }
      }
      const std::int64_t r =
          (static_cast<std::int64_t>(acc) + (std::int64_t{1} << (kShift - 1))) >>
          kShift;
      o.px[x] = static_cast<std::int8_t>(std::clamp<std::int64_t>(r, -128, 127));
    }
    out.push_back(o);
  }
  return out;
}

}  // namespace apps::conv2d

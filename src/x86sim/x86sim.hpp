// x86sim -- functional simulation with one OS thread per kernel
// (DESIGN.md substitution #3 for AMD's x86sim).
//
// Paper Section 5.2: "x86sim assigns each kernel to a dedicated OS thread,
// whereas cgsim employs cooperative multitasking to execute all kernels on
// a single shared thread." This module reproduces exactly that execution
// model over the same flattened graphs: ThreadedChannel (mutex + condition
// variables) replaces the cooperative channel, and every kernel, source and
// sink coroutine runs to completion on its own std::jthread with blocking
// stream accesses.
#pragma once

#include <utility>

#include "core/cgsim.hpp"

namespace x86sim {

/// Result of a thread-per-kernel functional simulation.
struct SimResult {
  cgsim::RunResult run{};
  std::size_t threads_used = 0;
};

/// Runs `g` with the x86sim execution model; the invocation convention
/// (positional sources then sinks) matches cgsim's (paper Section 3.7).
template <class... Args>
SimResult simulate(const cgsim::GraphView& g, int repetitions,
                   Args&&... args) {
  cgsim::RuntimeContext ctx{g, cgsim::ExecMode::threaded};
  cgsim::RunOptions opts{cgsim::ExecMode::threaded, repetitions};
  std::size_t pos = 0;
  (cgsim::detail::attach_io(ctx, g, opts, pos++, std::forward<Args>(args)),
   ...);
  SimResult r{};
  r.threads_used = ctx.tasks().size();
  r.run = ctx.run_threaded();
  return r;
}

}  // namespace x86sim

// cgsim -- umbrella header: compute-graph prototyping for AMD Versal AI
// Engines inside ordinary C++ applications.
//
// Reproduction of "A Compute Graph Simulation and Implementation Framework
// Targeting AMD Versal AI Engines" (H2RC @ SC'25).
//
// Quickstart (paper Figures 3 and 4):
//
//   #include <cgsim/cgsim.hpp>
//   using namespace cgsim;
//
//   COMPUTE_KERNEL(aie, adder,
//                  KernelReadPort<float> in1,
//                  KernelReadPort<float> in2,
//                  KernelWritePort<float> out) {
//     while (true) {
//       co_await out.put(co_await in1.get() + co_await in2.get());
//     }
//   }
//
//   constexpr auto the_graph = make_compute_graph_v<[](
//       IoConnector<float> a, IoConnector<float> b) {
//     IoConnector<float> sum;
//     adder(a, b, sum);
//     return std::make_tuple(sum);
//   }>;
//
//   std::vector<float> xs{1, 2}, ys{3, 4}, out;
//   the_graph(xs, ys, out);   // out == {4, 6}
#pragma once

#include "channel.hpp"     // IWYU pragma: export
#include "ct_graph.hpp"    // IWYU pragma: export
#include "dma.hpp"         // IWYU pragma: export
#include "dynamic_graph.hpp"  // IWYU pragma: export
#include "flatten.hpp"     // IWYU pragma: export
#include "fn_traits.hpp"   // IWYU pragma: export
#include "graph_dot.hpp"   // IWYU pragma: export
#include "graph_view.hpp"  // IWYU pragma: export
#include "kernel.hpp"      // IWYU pragma: export
#include "partition.hpp"   // IWYU pragma: export
#include "port_config.hpp" // IWYU pragma: export
#include "ports.hpp"       // IWYU pragma: export
#include "runtime.hpp"     // IWYU pragma: export
#include "scheduler.hpp"   // IWYU pragma: export
#include "session.hpp"     // IWYU pragma: export
#include "task.hpp"        // IWYU pragma: export
#include "types.hpp"       // IWYU pragma: export

// cgsim -- compile-time compute-graph construction (paper Sections 3.2-3.4).
//
// Graph construction runs entirely inside constexpr evaluation. Kernel
// instantiations and IoConnector objects allocate nodes on the compile-time
// heap (`constexpr new`); connectivity forms a pointer-based graph. Because
// C++20 requires every compile-time allocation to be freed before constant
// evaluation ends, the graph is subsequently *flattened* (flatten.hpp) into
// an array-based structure that can live in a constexpr variable.
//
// Construction bookkeeping uses union-find "arenas": every connector or
// kernel initially belongs to some arena; touching two arenas in one kernel
// call merges them. This allows graph-definition lambdas to instantiate
// kernels in any order (including source kernels whose connectors are not
// yet attached to anything). A subgraph that never merges with the arena of
// the global inputs/outputs leaks its allocations, which C++ turns into a
// compile error -- disconnected graphs are rejected by construction.
#pragma once

#include <string_view>

#include "port_config.hpp"
#include "ports.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Runtime wiring handed to a kernel thunk: one PortBinding per signature
/// parameter, in declaration order.
struct KernelBinding {
  const PortBinding* ports = nullptr;
  std::size_t nports = 0;
};

using KernelThunk = KernelTask (*)(const KernelBinding&);
using VTableFn = const ChannelVTable& (*)();

namespace ct {

struct EdgeNode;
struct KernelNode;

/// Union-find handle grouping all graph elements created so far that are
/// already known to be connected.
struct Arena {
  Arena* parent = nullptr;
  Arena* absorbed_head = nullptr;  // arenas merged into this one (for reaping)
  Arena* absorbed_next = nullptr;
  EdgeNode* edges_head = nullptr;
  KernelNode* kernels_head = nullptr;
  int n_edges = 0;
  int n_kernels = 0;
  int n_ports = 0;
};

/// One stream connection (an IoConnector's identity) on the constexpr heap.
struct EdgeNode {
  TypeId type = nullptr;
  VTableFn vtable = nullptr;
  PortSettings settings{};  // merged over all endpoints (Section 3.4)
  bool has_settings = false;
  Attribute attrs[kMaxAttrsPerEdge]{};
  int n_attrs = 0;
  int capacity = kDefaultChannelCapacity;
  int index = -1;  // assigned during flattening
  EdgeNode* next = nullptr;
};

struct PortRef {
  bool is_read = false;
  EdgeNode* edge = nullptr;
  PortSettings settings{};
};

/// One kernel instantiation on the constexpr heap.
struct KernelNode {
  std::string_view name{};
  Realm realm = Realm::aie;
  KernelThunk thunk = nullptr;
  PortRef ports[kMaxPortsPerKernel]{};
  int nports = 0;
  int index = -1;
  KernelNode* next = nullptr;
};

[[nodiscard]] constexpr Arena* find_root(Arena* a) {
  while (a->parent != nullptr) a = a->parent;
  return a;
}

constexpr Arena* merge(Arena* a, Arena* b) {
  a = find_root(a);
  b = find_root(b);
  if (a == b) return a;
  if (b->edges_head != nullptr) {
    EdgeNode* t = b->edges_head;
    while (t->next != nullptr) t = t->next;
    t->next = a->edges_head;
    a->edges_head = b->edges_head;
    b->edges_head = nullptr;
  }
  if (b->kernels_head != nullptr) {
    KernelNode* t = b->kernels_head;
    while (t->next != nullptr) t = t->next;
    t->next = a->kernels_head;
    a->kernels_head = b->kernels_head;
    b->kernels_head = nullptr;
  }
  a->n_edges += b->n_edges;
  a->n_kernels += b->n_kernels;
  a->n_ports += b->n_ports;
  if (b->absorbed_head != nullptr) {
    Arena* t = b->absorbed_head;
    while (t->absorbed_next != nullptr) t = t->absorbed_next;
    t->absorbed_next = a->absorbed_head;
    a->absorbed_head = b->absorbed_head;
    b->absorbed_head = nullptr;
  }
  b->parent = a;
  b->absorbed_next = a->absorbed_head;
  a->absorbed_head = b;
  return a;
}

/// Restores creation order: nodes are pushed at the list head, so the
/// lists come out newest-first; flattening wants oldest-first so indices
/// are stable and match the graph definition's reading order.
template <class Node, Node* Node::* Next>
constexpr Node* reverse_list(Node* head) {
  Node* prev = nullptr;
  while (head != nullptr) {
    Node* next = head->*Next;
    head->*Next = prev;
    prev = head;
    head = next;
  }
  return prev;
}

constexpr void restore_creation_order(Arena* root) {
  root->edges_head = reverse_list<EdgeNode, &EdgeNode::next>(root->edges_head);
  root->kernels_head =
      reverse_list<KernelNode, &KernelNode::next>(root->kernels_head);
}

/// Frees the whole constexpr object graph reachable from a root arena.
constexpr void destroy_arena(Arena* root) {
  KernelNode* k = root->kernels_head;
  while (k != nullptr) {
    KernelNode* n = k->next;
    delete k;
    k = n;
  }
  EdgeNode* e = root->edges_head;
  while (e != nullptr) {
    EdgeNode* n = e->next;
    delete e;
    e = n;
  }
  Arena* a = root->absorbed_head;
  while (a != nullptr) {
    Arena* n = a->absorbed_next;
    delete a;
    a = n;
  }
  delete root;
}

}  // namespace ct

/// A (future) stream connection between kernels or between a kernel and the
/// outside world (paper Section 3.4, Figure 4). Connectors are handed to
/// kernel instantiations; several readers of one connector broadcast,
/// several writers merge.
template <class T>
class IoConnector {
 public:
  using value_type = T;

  constexpr IoConnector() = default;

  /// Attaches auxiliary extractor-facing information (paper Section 3.4),
  /// e.g. `.attr("plio_name", "DataIn1")`. Returns *this for chaining.
  constexpr IoConnector& attr(std::string_view key, std::string_view value) {
    ensure();
    push_attr({key, value, 0, false});
    return *this;
  }
  constexpr IoConnector& attr(std::string_view key, long long value) {
    ensure();
    push_attr({key, {}, value, true});
    return *this;
  }
  /// Overrides the simulation channel capacity (elements) of this edge.
  constexpr IoConnector& capacity(int elements) {
    ensure();
    edge_->capacity = elements;
    return *this;
  }

  /// Binds this connector into `a`'s arena, creating its edge on first use
  /// or merging arenas when already bound elsewhere.
  constexpr void bind(ct::Arena* a) {
    a = ct::find_root(a);
    if (edge_ == nullptr) {
      arena_ = a;
      edge_ = new ct::EdgeNode{};
      edge_->type = type_id<T>();
      edge_->vtable = &channel_vtable<T>;
      edge_->next = a->edges_head;
      a->edges_head = edge_;
      ++a->n_edges;
    } else if (ct::find_root(arena_) != a) {
      ct::merge(arena_, a);
    }
    arena_ = ct::find_root(arena_);
  }

  /// Self-binds into a fresh arena when not yet connected to anything.
  constexpr void ensure() {
    if (edge_ == nullptr) bind(new ct::Arena{});
  }

  [[nodiscard]] constexpr ct::Arena* arena() const { return arena_; }
  [[nodiscard]] constexpr ct::EdgeNode* edge() const { return edge_; }
  [[nodiscard]] constexpr bool bound() const { return edge_ != nullptr; }

 private:
  constexpr void push_attr(const Attribute& a) {
    if (edge_->n_attrs >= kMaxAttrsPerEdge) {
      throw "too many attributes on one connection";  // constexpr failure
    }
    edge_->attrs[edge_->n_attrs++] = a;
  }

  ct::Arena* arena_ = nullptr;
  ct::EdgeNode* edge_ = nullptr;
};

}  // namespace cgsim

// cgsim -- kernel definition: the COMPUTE_KERNEL macro and KernelHandle
// (paper Section 3.3, Figure 3).
//
// COMPUTE_KERNEL(realm, name, ports...) generates
//   * a metadata class `name_kernel_def` holding the kernel's name, realm,
//     and its coroutine body as a static member function, and
//   * a constexpr instance `name` of KernelHandle, callable inside graph
//     definition lambdas to instantiate the kernel.
//
// The handle's call operator runs at compile time: it type-checks the
// IoConnector arguments against the body signature, merges port settings
// into the touched edges, and records a KernelNode on the constexpr heap.
// It also captures `&kernel_thunk<Def>`, the template function the runtime
// later calls to reconstruct the kernel with properly typed ports (paper
// Sections 3.5-3.6: "type information ... is preserved through template
// functions").
#pragma once

#include <tuple>
#include <utility>

#include "ct_graph.hpp"
#include "fn_traits.hpp"
#include "ports.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

namespace detail {

/// Reconstructs a typed kernel instance from type-erased runtime bindings.
template <class Def>
KernelTask kernel_thunk(const KernelBinding& b) {
  using traits = fn_traits<decltype(&Def::body)>;
  return [&b]<std::size_t... I>(std::index_sequence<I...>) {
    return Def::body(typename traits::template arg<I>{b.ports[I]}...);
  }(std::make_index_sequence<traits::arity>{});
}

}  // namespace detail

/// Compile-time callable representing one kernel type; invoking it inside a
/// graph-definition lambda instantiates the kernel (paper Figure 4).
template <class Def>
class KernelHandle {
  using traits = fn_traits<decltype(&Def::body)>;

 public:
  template <class... Ts>
  constexpr void operator()(IoConnector<Ts>&... cs) const {
    static_assert(sizeof...(Ts) == traits::arity,
                  "kernel instantiation: wrong number of connectors");
    static_assert(sizeof...(Ts) <= kMaxPortsPerKernel,
                  "kernel has too many ports");
    check_types(std::index_sequence_for<Ts...>{},
                std::type_identity<std::tuple<Ts...>>{});

    // Bring every argument into one arena (order-independent construction).
    (cs.ensure(), ...);
    ct::Arena* root = nullptr;
    ((root = root == nullptr ? ct::find_root(cs.arena())
                             : ct::merge(root, cs.arena())),
     ...);

    auto* k = new ct::KernelNode{};
    k->name = Def::kernel_name;
    k->realm = Def::realm;
    k->thunk = &detail::kernel_thunk<Def>;
    record_ports(k, root, std::index_sequence_for<Ts...>{}, cs...);
    k->next = root->kernels_head;
    root->kernels_head = k;
    ++root->n_kernels;
    root->n_ports += k->nports;
  }

  [[nodiscard]] static constexpr std::string_view name() {
    return Def::kernel_name;
  }
  [[nodiscard]] static constexpr Realm realm() { return Def::realm; }
  [[nodiscard]] static constexpr std::size_t arity() { return traits::arity; }

 private:
  template <std::size_t... I, class... Ts>
  static constexpr void check_types(std::index_sequence<I...>,
                                    std::type_identity<std::tuple<Ts...>>) {
    static_assert(
        (std::is_same_v<
             typename port_traits<typename traits::template arg<I>>::value_type,
             std::tuple_element_t<I, std::tuple<Ts...>>> &&
         ...),
        "kernel instantiation: connector element type does not match the "
        "kernel port type");
  }

  template <std::size_t... I, class... Ts>
  static constexpr void record_ports(ct::KernelNode* k, ct::Arena* /*root*/,
                                     std::index_sequence<I...>,
                                     IoConnector<Ts>&... cs) {
    (record_one<I>(k, cs), ...);
  }

  template <std::size_t I, class T>
  static constexpr void record_one(ct::KernelNode* k, IoConnector<T>& c) {
    using P = port_traits<typename traits::template arg<I>>;
    ct::EdgeNode* e = c.edge();
    // Merge this endpoint's settings into the connection; incompatible
    // settings make constant evaluation (and thus compilation) fail here.
    if (e->has_settings) {
      e->settings = merge_settings_or_fail(e->settings, P::settings);
    } else {
      e->settings = P::settings;
      e->has_settings = true;
    }
    k->ports[k->nports++] = ct::PortRef{P::is_read, e, P::settings};
  }
};

}  // namespace cgsim

/// Defines a compute kernel (paper Figure 3):
///
///   COMPUTE_KERNEL(aie, adder,
///                  cgsim::KernelReadPort<float> in1,
///                  cgsim::KernelReadPort<float> in2,
///                  cgsim::KernelWritePort<float> out) {
///     while (true) {
///       co_await out.put(co_await in1.get() + co_await in2.get());
///     }
///   }
///
/// The first argument is the execution realm (target hardware) the graph
/// extractor later uses for partitioning; the second the kernel name; the
/// rest the kernel's I/O port declarations, which double as the coroutine's
/// parameter list.
#define COMPUTE_KERNEL(realm_, name_, ...)                                 \
  struct name_##_kernel_def {                                              \
    static constexpr std::string_view kernel_name = #name_;                \
    static constexpr ::cgsim::Realm realm = ::cgsim::Realm::realm_;        \
    static ::cgsim::KernelTask body(__VA_ARGS__);                          \
  };                                                                       \
  inline constexpr ::cgsim::KernelHandle<name_##_kernel_def> name_{};      \
  inline ::cgsim::KernelTask name_##_kernel_def::body(__VA_ARGS__)

/// Defines a compute kernel templated over one element type -- support for
/// templated kernels is listed as future work in the paper (Section 6) and
/// implemented here as an extension:
///
///   COMPUTE_KERNEL_TEMPLATE(aie, caster, T,
///                           cgsim::KernelReadPort<T> in,
///                           cgsim::KernelWritePort<float> out) {
///     while (true) {
///       co_await out.put(static_cast<float>(co_await in.get()));
///     }
///   }
///
/// Instantiations are used as `caster<int>(a, b)` inside graph definitions;
/// each instantiation reports a synthesized kernel name like "caster<int>"
/// to the flattened graph and the extractor.
#define COMPUTE_KERNEL_TEMPLATE(realm_, name_, TP, ...)                    \
  template <class TP>                                                      \
  struct name_##_kernel_def {                                              \
    static constexpr auto kernel_name_storage =                            \
        ::cgsim::detail::template_kernel_name<TP>(#name_);                 \
    static constexpr std::string_view kernel_name =                        \
        kernel_name_storage.view();                                        \
    static constexpr ::cgsim::Realm realm = ::cgsim::Realm::realm_;        \
    static ::cgsim::KernelTask body(__VA_ARGS__);                          \
  };                                                                       \
  template <class TP>                                                      \
  inline constexpr ::cgsim::KernelHandle<name_##_kernel_def<TP>> name_{};  \
  template <class TP>                                                      \
  ::cgsim::KernelTask name_##_kernel_def<TP>::body(__VA_ARGS__)

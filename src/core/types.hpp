// cgsim -- core type identity and execution-mode definitions.
//
// TypeId gives every stream element type a unique, constexpr-storable
// identity (the address of a per-type tag variable). The flattened graph
// stores TypeIds so that the runtime and the extractor can check that the
// containers / channels supplied at run time match the types the graph was
// built with at compile time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cgsim {

/// Execution backend selected when a graph is instantiated.
enum class ExecMode : std::uint8_t {
  coop,      ///< cooperative coroutine scheduler on one thread (cgsim default)
  threaded,  ///< one OS thread per kernel (x86sim-style functional simulation)
  sim,       ///< cycle-approximate virtual-time simulation (aiesim-style)
  coop_mt,   ///< sharded cooperative schedulers on a fixed worker pool
};

/// Target hardware realm of a kernel (paper Section 4.3). The paper's
/// implementation supports `aie` and `noextract`; `hls` realizes the
/// FPGA-fabric backend its Section 6 names as the natural extension of the
/// realm architecture.
enum class Realm : std::uint8_t {
  aie,        ///< map to the AI Engine array
  noextract,  ///< keep on the host; excluded from extraction
  hls,        ///< map to the programmable logic via Vitis HLS
  host,       ///< reserved for future host backends
};

[[nodiscard]] constexpr std::string_view realm_name(Realm r) {
  switch (r) {
    case Realm::aie: return "aie";
    case Realm::noextract: return "noextract";
    case Realm::hls: return "hls";
    case Realm::host: return "host";
  }
  return "?";
}

namespace detail {
template <class T>
inline constexpr char type_tag_v = 0;

template <class T>
[[nodiscard]] constexpr std::string_view pretty_type_name() {
  std::string_view p = __PRETTY_FUNCTION__;
  // GCC: "... [with T = int; std::string_view = ...]"
  const auto key = std::string_view{"T = "};
  const auto start = p.find(key);
  if (start == std::string_view::npos) return "?";
  const auto from = start + key.size();
  auto end = p.find(';', from);
  if (end == std::string_view::npos) end = p.find(']', from);
  if (end == std::string_view::npos) return "?";
  return p.substr(from, end - from);
}
}  // namespace detail

/// Unique identity for a stream element type; comparable and constexpr.
using TypeId = const char*;

template <class T>
[[nodiscard]] constexpr TypeId type_id() {
  return &detail::type_tag_v<T>;
}

/// Human-readable spelling of T, e.g. "float" -- used by the extractor's
/// code generator and in diagnostics.
template <class T>
[[nodiscard]] constexpr std::string_view type_name() {
  return detail::pretty_type_name<T>();
}

namespace detail {

/// Fixed-capacity constexpr string used for synthesized kernel names of
/// template-kernel instantiations, e.g. "axpy<float>".
struct NameBuf {
  static constexpr std::size_t kCapacity = 120;
  char buf[kCapacity] = {};
  std::size_t len = 0;

  constexpr void append(std::string_view s) {
    for (char c : s) {
      if (len < kCapacity - 1) buf[len++] = c;
    }
  }
  [[nodiscard]] constexpr std::string_view view() const {
    return std::string_view{buf, len};
  }
};

template <class T>
[[nodiscard]] constexpr NameBuf template_kernel_name(std::string_view base) {
  NameBuf b{};
  b.append(base);
  b.append("<");
  b.append(pretty_type_name<T>());
  b.append(">");
  return b;
}

}  // namespace detail

class ChannelBase;
class Executor;
class KernelTask;

/// Byte-level recording of all traffic on one edge during a simulation run:
/// every element pushed, in push order, with its virtual-time stamp. The
/// incremental re-simulation layer records these on the boundary edges of a
/// baseline run and replays them into a later run so everything upstream of
/// the boundary can be skipped. Only trivially-copyable element types can
/// be tapped (elements are stored as raw bytes).
struct EdgeTap {
  std::vector<std::byte> data;          ///< size() == count * elem_size
  std::vector<std::uint64_t> stamps;    ///< one per element, push order

  [[nodiscard]] std::size_t count() const { return stamps.size(); }
  void clear() {
    data.clear();
    stamps.clear();
  }
};

/// Per-element-type operations the runtime needs to build channels for an
/// edge whose element type was erased during flattening. One instance per
/// type T exists as a constexpr inline variable; the flattened graph stores
/// a pointer to it.
struct ChannelVTable {
  // Creates a channel for `mode`. `consumers` is the number of broadcast
  // endpoints, `capacity` the ring size in elements, `rtp` selects the
  // sticky runtime-parameter channel instead of a FIFO.
  ChannelBase* (*create)(ExecMode mode, int consumers, int capacity, bool rtp,
                         Executor* exec);
  // Creates the lock-light cross-shard channel backing an edge whose
  // endpoints land on different shards of a coop_mt run. `exec` must be a
  // thread-safe executor that routes each coroutine to its home shard.
  ChannelBase* (*create_shard)(int consumers, int capacity, Executor* exec);
  std::string_view type_name;
  std::size_t elem_size;
  std::size_t elem_align;
  // Attaches `tap` to record every future push on `ch`. Returns false (and
  // attaches nothing) when the channel cannot be tapped: not a cooperative
  // ring (RTP/threaded/shard backends) or a non-trivially-copyable element
  // type.
  bool (*attach_tap)(ChannelBase* ch, EdgeTap* tap);
  // Builds a replay coroutine that re-pushes `tap`'s recording into `ch` at
  // the recorded virtual-time stamps, standing in for every original
  // producer of the edge. `blocked` is incremented whenever a replay push
  // has to park (ring full) -- a nonzero count means the re-simulated
  // consumers exerted backpressure the recording never saw, so the caller
  // must discard the incremental run. Requires a tappable channel (see
  // attach_tap); `tap`, `exec` and `blocked` must outlive the coroutine.
  KernelTask (*make_replay)(ChannelBase* ch, const EdgeTap* tap,
                            Executor* exec, std::uint64_t* blocked);
};

// Defined in channel.hpp; the address is taken at compile time inside
// constexpr graph construction, the definition is instantiated in any TU
// that includes cgsim.hpp.
template <class T>
const ChannelVTable& channel_vtable();

}  // namespace cgsim

// cgsim -- per-port settings and per-connection attributes.
//
// Settings that influence graph behaviour (paper Section 3.4) are non-type
// template parameters of KernelReadPort / KernelWritePort. When two
// parameterized ports meet on one IoConnector, their settings are merged;
// incompatible settings abort constexpr evaluation, i.e. become a compile
// error at the graph definition site.
//
// Attributes (string key -> string-or-integer value) do NOT affect runtime
// behaviour; they carry auxiliary information (PLIO names, buffering modes)
// to the graph extractor.
#pragma once

#include <cstdint>
#include <string_view>

namespace cgsim {

/// Buffering discipline of a kernel I/O port.
enum class BufferMode : std::uint8_t {
  unspecified,  ///< merges with anything
  stream,       ///< AXI4-Stream style per-beat access
  window,       ///< whole-block window buffer
  pingpong,     ///< double-buffered window
};

[[nodiscard]] constexpr std::string_view buffer_mode_name(BufferMode m) {
  switch (m) {
    case BufferMode::unspecified: return "unspecified";
    case BufferMode::stream: return "stream";
    case BufferMode::window: return "window";
    case BufferMode::pingpong: return "pingpong";
  }
  return "?";
}

/// How a global connection reaches the AIE array (paper Section 6 lists
/// Global Memory I/O as future work; implemented here as an extension).
enum class IoKind : std::uint8_t {
  unspecified,  ///< merges with anything; defaults to plio
  plio,         ///< PL streaming interface (the paper's evaluation setup)
  gmio,         ///< NoC DMA to global memory (burst transfers)
};

[[nodiscard]] constexpr std::string_view io_kind_name(IoKind k) {
  switch (k) {
    case IoKind::unspecified: return "unspecified";
    case IoKind::plio: return "plio";
    case IoKind::gmio: return "gmio";
  }
  return "?";
}

/// Port settings; a structural type usable as a non-type template parameter.
/// Zero-valued fields mean "unspecified" and merge with any concrete value.
struct PortSettings {
  int beat_bits = 0;     ///< AXI beat width in bits (0 = unspecified -> 32)
  bool rtp = false;      ///< port is an AIE runtime parameter
  BufferMode buffer = BufferMode::unspecified;
  int window_size = 0;   ///< elements per window (window/pingpong modes)
  IoKind io = IoKind::unspecified;  ///< global-interface kind (plio/gmio)

  [[nodiscard]] constexpr bool operator==(const PortSettings&) const = default;
};

/// Result of a settings merge; `ok == false` carries a diagnostic.
struct MergeResult {
  bool ok = true;
  PortSettings merged{};
  std::string_view error{};
};

/// Merges the settings of two endpoints that share a connection
/// (paper Section 3.4: "cgsim checks for compatibility and merges their
/// configurations into a unified setting shared by all connected
/// endpoints").
[[nodiscard]] constexpr MergeResult try_merge_settings(PortSettings a,
                                                       PortSettings b) {
  MergeResult r{};
  if (a.beat_bits == 0) {
    r.merged.beat_bits = b.beat_bits;
  } else if (b.beat_bits == 0 || a.beat_bits == b.beat_bits) {
    r.merged.beat_bits = a.beat_bits;
  } else {
    return {false, {}, "incompatible beat widths on connected ports"};
  }
  if (a.rtp != b.rtp) {
    return {false, {},
            "runtime-parameter port connected to a streaming port"};
  }
  r.merged.rtp = a.rtp;
  if (a.buffer == BufferMode::unspecified) {
    r.merged.buffer = b.buffer;
  } else if (b.buffer == BufferMode::unspecified || a.buffer == b.buffer) {
    r.merged.buffer = a.buffer;
  } else {
    return {false, {}, "incompatible buffer modes on connected ports"};
  }
  if (a.window_size == 0) {
    r.merged.window_size = b.window_size;
  } else if (b.window_size == 0 || a.window_size == b.window_size) {
    r.merged.window_size = a.window_size;
  } else {
    return {false, {}, "incompatible window sizes on connected ports"};
  }
  if (a.io == IoKind::unspecified) {
    r.merged.io = b.io;
  } else if (b.io == IoKind::unspecified || a.io == b.io) {
    r.merged.io = a.io;
  } else {
    return {false, {}, "incompatible global-interface kinds (plio vs gmio)"};
  }
  return r;
}

/// Merge that fails constexpr evaluation (and therefore compilation when it
/// runs at compile time) on incompatible settings.
[[nodiscard]] constexpr PortSettings merge_settings_or_fail(PortSettings a,
                                                            PortSettings b) {
  const MergeResult r = try_merge_settings(a, b);
  if (!r.ok) {
    // Reached only on incompatible settings: not a constant expression, so
    // graph construction fails to compile with this call in the trace.
    throw r.error;  // NOLINT -- intentional constexpr failure signal
  }
  return r.merged;
}

/// Effective beat width after defaulting (bits).
[[nodiscard]] constexpr int effective_beat_bits(const PortSettings& s) {
  return s.beat_bits == 0 ? 32 : s.beat_bits;
}

/// One extractor-facing attribute attached to a connection
/// (paper Section 3.4). Values are string literals or integers; keys are
/// string literals, so string_views remain valid from compile time into
/// run time.
struct Attribute {
  std::string_view key{};
  std::string_view str_value{};
  long long int_value = 0;
  bool is_int = false;

  [[nodiscard]] constexpr bool operator==(const Attribute&) const = default;
};

constexpr int kMaxAttrsPerEdge = 8;
constexpr int kMaxPortsPerKernel = 16;
constexpr int kMaxGlobalPorts = 32;

/// Default ring capacity (elements) of the MPMC channels backing an edge.
constexpr int kDefaultChannelCapacity = 64;

}  // namespace cgsim

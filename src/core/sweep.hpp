// cgsim -- batch scenario-sweep engine.
//
// Design-space exploration runs thousands of *independent* simulations of
// one graph (seed / RTP / placement / config variants). That workload is
// embarrassingly parallel and saturates any core count regardless of how
// well a single graph shards, so it gets its own engine:
//
//   * SweepRunner  -- persistent worker pool; a batch hands every worker a
//                     job index stream (atomic counter) and each completed
//                     job's result travels through a lock-free MPSC queue
//                     to the caller thread, which aggregates in completion
//                     order. Workers never touch each other's state.
//   * Arena        -- bump allocator, one per worker slot. reset() rewinds
//                     to empty but keeps the blocks, so steady-state sweep
//                     iterations perform zero heap traffic for scratch
//                     data (inputs, outputs, digests).
//   * MpscQueue    -- Vyukov-style intrusive multi-producer/single-consumer
//                     queue: producers exchange the head and link; the
//                     consumer walks the tail. One CAS-free exchange per
//                     push, no locks anywhere on the result path.
//   * SessionPool  -- keyed checkout/return pool with RAII leases. Warm
//                     simulation sessions (aiesim::ResimSession) are
//                     reusable but strictly single-threaded, so sweep
//                     workers *check them out* -- two workers can never
//                     hold the same session, which is what the session's
//                     thread-affinity guard enforces at runtime.
//   * SweepReport  -- per-variant rows (cycles, digest, incremental flag)
//                     plus order-independent summary statistics.
//
// The header is engine-agnostic: nothing here depends on aiesim. The
// aiesim sweep driver (bench_ablation_sweep) composes these pieces with
// CompiledGraphCache + ResimSession.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cgsim {

// ---------------------------------------------------------------------------
// Arena: bump allocation, reset-not-free.
// ---------------------------------------------------------------------------

/// Monotonic bump allocator over geometrically grown blocks. reset()
/// rewinds the cursor but keeps every block, so after the first few
/// iterations a sweep worker's scratch allocations are pure pointer
/// arithmetic. Not thread-safe: one Arena per in-flight run.
class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    assert((align & (align - 1)) == 0 && "alignment must be a power of two");
    for (; block_ < blocks_.size(); ++block_, offset_ = 0) {
      Block& b = blocks_[block_];
      const std::size_t at = (offset_ + align - 1) & ~(align - 1);
      if (at + bytes <= b.size) {
        offset_ = at + bytes;
        return b.data.get() + at;
      }
    }
    // No existing block fits: grow geometrically (at least to `bytes`).
    // Block storage from new[] is max-aligned, so offset 0 satisfies any
    // fundamental alignment.
    std::size_t sz = next_block_bytes_;
    while (sz < bytes) sz *= 2;
    next_block_bytes_ = sz * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(sz), sz});
    block_ = blocks_.size() - 1;
    offset_ = bytes;
    return blocks_.back().data.get();
  }

  template <class T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty; keeps every block for reuse.
  void reset() {
    block_ = 0;
    offset_ = 0;
    ++resets_;
  }

  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< block the cursor is in
  std::size_t offset_ = 0;  ///< cursor within blocks_[block_]
  std::size_t next_block_bytes_;
  std::uint64_t resets_ = 0;
};

// ---------------------------------------------------------------------------
// MpscQueue: lock-free multi-producer / single-consumer FIFO.
// ---------------------------------------------------------------------------

/// Vyukov-style intrusive MPSC queue. push() is wait-free for producers
/// (one atomic exchange); try_pop() is the single consumer's. Per-producer
/// FIFO order is preserved; cross-producer order is arrival order of the
/// exchanges.
template <class T>
class MpscQueue {
 public:
  MpscQueue() : stub_(new Node{}), head_(stub_), tail_(stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Any thread.
  void push(T v) {
    Node* n = new Node{};
    n->value = std::move(v);
    // Publish the node, then link the previous head to it. Between the
    // exchange and the store the chain is momentarily broken; the consumer
    // simply sees "empty" at the break point and retries later.
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  /// Consumer thread only.
  bool try_pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    tail_ = next;
    delete tail;
    return true;
  }

  /// Consumer-side emptiness hint (exact only if producers are quiet).
  [[nodiscard]] bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* stub_;
  alignas(64) std::atomic<Node*> head_;  // producers' end
  alignas(64) Node* tail_;               // consumer's end
};

// ---------------------------------------------------------------------------
// SessionPool: keyed exclusive checkout of warm sessions.
// ---------------------------------------------------------------------------

/// Pool of reusable single-threaded sessions, keyed by scenario class
/// (e.g. "baseline established with base inputs" vs "full-run lane").
/// checkout() hands out an exclusive lease -- the session leaves the pool
/// entirely while leased, so two workers can never share one. The lease
/// returns the session on destruction.
///
/// Retention is bounded: set_capacity(n) caps the number of *idle* warm
/// sessions, evicting least-recently-returned first, so a long-running
/// daemon serving many distinct graph keys does not grow its memory with
/// the key population. Leased sessions never count against the cap.
template <class Key, class Session>
class SessionPool {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(SessionPool* pool, Key key, std::unique_ptr<Session> s)
        : pool_(pool), key_(std::move(key)), s_(std::move(s)) {}
    Lease(Lease&& o) noexcept
        : pool_(o.pool_),
          key_(std::move(o.key_)),
          s_(std::move(o.s_)),
          fresh_(o.fresh_) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      release();
      pool_ = o.pool_;
      key_ = std::move(o.key_);
      s_ = std::move(o.s_);
      fresh_ = o.fresh_;
      o.pool_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Session& operator*() { return *s_; }
    [[nodiscard]] Session* operator->() { return s_.get(); }
    [[nodiscard]] Session* get() { return s_.get(); }
    [[nodiscard]] bool fresh() const { return fresh_; }
    void mark_warm() { fresh_ = false; }

   private:
    friend class SessionPool;
    void release() {
      if (pool_ != nullptr && s_ != nullptr) {
        pool_->put_back(key_, std::move(s_));
      }
      pool_ = nullptr;
    }
    SessionPool* pool_ = nullptr;
    Key key_{};
    std::unique_ptr<Session> s_;
    bool fresh_ = true;
  };

  /// Checks out an idle session for `key`, or builds one via `make()`
  /// (called outside the pool lock -- construction may simulate).
  /// Lease::fresh() tells the caller whether the session still needs its
  /// baseline established.
  template <class Make>
  [[nodiscard]] Lease checkout(const Key& key, Make&& make) {
    {
      std::lock_guard lk{m_};
      auto it = index_.find(key);
      if (it != index_.end()) {
        std::unique_ptr<Session> s = std::move(it->second->session);
        lru_.erase(it->second);
        index_.erase(it);
        Lease l{this, key, std::move(s)};
        l.mark_warm();
        ++reused_;
        return l;
      }
    }
    ++created_;
    return Lease{this, key, make()};
  }

  /// Caps the number of idle warm sessions retained; 0 retains nothing
  /// (every put_back destroys). Applies immediately to current contents.
  void set_capacity(std::size_t cap) {
    std::vector<std::unique_ptr<Session>> doomed;  // destroyed unlocked
    {
      std::lock_guard lk{m_};
      capacity_ = cap;
      while (lru_.size() > capacity_) doomed.push_back(evict_oldest());
    }
  }

  [[nodiscard]] std::size_t capacity() const {
    std::lock_guard lk{m_};
    return capacity_;
  }
  [[nodiscard]] std::size_t idle_count() const {
    std::lock_guard lk{m_};
    return lru_.size();
  }
  [[nodiscard]] std::uint64_t created() const { return created_.load(); }
  [[nodiscard]] std::uint64_t reused() const { return reused_.load(); }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_.load(); }

 private:
  struct Entry {
    Key key;
    std::unique_ptr<Session> session;
  };
  using LruList = std::list<Entry>;

  void put_back(const Key& key, std::unique_ptr<Session> s) {
    std::unique_ptr<Session> doomed;  // session dtor may simulate; unlocked
    {
      std::lock_guard lk{m_};
      if (capacity_ == 0) {
        doomed = std::move(s);
        ++evicted_;
        return;  // destroys after unlock via `doomed` going out of scope
      }
      lru_.push_back(Entry{key, std::move(s)});
      index_.emplace(key, std::prev(lru_.end()));
      if (lru_.size() > capacity_) doomed = evict_oldest();
    }
  }

  /// Pops the least-recently-returned idle session. Caller holds m_ and
  /// destroys the session outside the lock.
  std::unique_ptr<Session> evict_oldest() {
    assert(!lru_.empty());
    typename LruList::iterator victim = lru_.begin();
    auto [lo, hi] = index_.equal_range(victim->key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    std::unique_ptr<Session> s = std::move(victim->session);
    lru_.erase(victim);
    ++evicted_;
    return s;
  }

  mutable std::mutex m_;
  LruList lru_;  ///< idle sessions, least-recently-returned first
  std::multimap<Key, typename LruList::iterator> index_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> evicted_{0};

 public:
  static constexpr std::size_t kDefaultCapacity = 256;
};

// ---------------------------------------------------------------------------
// SweepRunner: persistent worker pool + MPSC aggregation.
// ---------------------------------------------------------------------------

/// Persistent pool of sweep workers. Each worker owns a slot with an Arena
/// that is reset (not freed) between jobs; batches are distributed by an
/// atomic job counter, so a slow variant never blocks the others. Results
/// funnel through a lock-free MPSC queue to the calling thread, which runs
/// the collector in completion order.
class SweepRunner {
 public:
  struct WorkerSlot {
    int worker = 0;
    Arena arena;
    std::uint64_t jobs = 0;
    double busy_s = 0.0;
  };

  explicit SweepRunner(int n_workers) {
    if (n_workers < 1) n_workers = 1;
    slots_.reserve(static_cast<std::size_t>(n_workers));
    for (int i = 0; i < n_workers; ++i) {
      slots_.push_back(std::make_unique<WorkerSlot>());
      slots_.back()->worker = i;
    }
    threads_.reserve(static_cast<std::size_t>(n_workers));
    for (int i = 0; i < n_workers; ++i) {
      threads_.emplace_back([this, i] { worker_main(*slots_[static_cast<std::size_t>(i)]); });
    }
  }

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  ~SweepRunner() {
    {
      std::lock_guard lk{m_};
      stop_ = true;
    }
    work_cv_.notify_all();
  }  // jthreads join

  [[nodiscard]] int workers() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] const WorkerSlot& slot(int i) const { return *slots_[static_cast<std::size_t>(i)]; }

  /// Runs `n_jobs` invocations of `fn(job_index, slot)` across the pool
  /// and calls `collect(job_index, result)` on *this* thread, in
  /// completion order, until every job is accounted for. Blocks until the
  /// batch is done; the pool survives for the next batch.
  template <class Fn, class Collect>
  void run_batch(std::size_t n_jobs, Fn&& fn, Collect&& collect) {
    using R = std::invoke_result_t<Fn&, std::size_t, WorkerSlot&>;
    static_assert(!std::is_void_v<R>,
                  "sweep jobs must return a result for aggregation");
    if (n_jobs == 0) return;
    MpscQueue<std::pair<std::size_t, R>> results;
    // The push is the closure's last touch of batch-local state AND of the
    // worker's slot (stats update precedes it): a worker only reads job_
    // between claiming an index (under m_) and pushing the result, so once
    // the caller has popped every result no worker can still be inside the
    // closure, job_ is safe to replace, and -- because the push/pop pair is
    // a release/acquire edge -- the caller may read every slot's jobs /
    // busy_s / arena without further synchronization. Job claims go
    // through the pool mutex -- a sweep job is an entire simulation, so
    // one uncontended lock per claim is noise; the per-result hot path
    // (workers -> caller) stays lock-free through the MPSC queue.
    job_ = [&](std::size_t i, WorkerSlot& slot) {
      const auto t0 = std::chrono::steady_clock::now();
      R r = fn(i, slot);
      slot.busy_s += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      ++slot.jobs;
      results.push(std::pair<std::size_t, R>{i, std::move(r)});
    };
    {
      std::lock_guard lk{m_};
      total_ = n_jobs;
      next_ = 0;
    }
    work_cv_.notify_all();

    std::size_t collected = 0;
    std::pair<std::size_t, R> item;
    while (collected < n_jobs) {
      if (results.try_pop(item)) {
        collect(item.first, std::move(item.second));
        ++collected;
        continue;
      }
      // A notification can slip between the failed pop and the wait; the
      // bounded timeout turns that lost wake into a 1ms hiccup at most.
      std::unique_lock lk{done_m_};
      done_cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  /// Enqueues one fire-and-forget job for any worker: the service daemon's
  /// dispatch path (each request is one posted job; completion is reported
  /// through whatever channel the closure captured). Posted jobs interleave
  /// with -- and take priority over -- run_batch() jobs, so a daemon can
  /// share the pool with background sweeps without head-of-line blocking
  /// behind an entire batch.
  void post(std::function<void(WorkerSlot&)> job) {
    {
      std::lock_guard lk{m_};
      posted_.push_back(std::move(job));
    }
    work_cv_.notify_one();
  }

  /// Posted jobs accepted but not yet started (diagnostic; racy by nature).
  [[nodiscard]] std::size_t posted_pending() const {
    std::lock_guard lk{m_};
    return posted_.size();
  }

 private:
  void worker_main(WorkerSlot& slot) {
    for (;;) {
      std::size_t i = 0;
      std::function<void(WorkerSlot&)> posted;
      {
        std::unique_lock lk{m_};
        work_cv_.wait(
            lk, [&] { return stop_ || !posted_.empty() || next_ < total_; });
        if (stop_) return;
        if (!posted_.empty()) {
          posted = std::move(posted_.front());
          posted_.pop_front();
        } else {
          i = next_++;
        }
      }
      slot.arena.reset();
      if (posted) {
        const auto t0 = std::chrono::steady_clock::now();
        posted(slot);
        slot.busy_s += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        ++slot.jobs;
        continue;  // posted jobs are not part of any batch accounting
      }
      job_(i, slot);  // updates slot stats, then pushes the result
      done_cv_.notify_one();
    }
  }

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::function<void(std::size_t, WorkerSlot&)> job_;
  std::deque<std::function<void(WorkerSlot&)>> posted_;  // guarded by m_
  std::size_t total_ = 0;  // guarded by m_
  std::size_t next_ = 0;   // guarded by m_; next_ == total_ means drained
  mutable std::mutex m_;
  std::condition_variable work_cv_;
  bool stop_ = false;  // guarded by m_
  std::mutex done_m_;
  std::condition_variable done_cv_;
  std::vector<std::jthread> threads_;  // last member: joins before teardown
};

// ---------------------------------------------------------------------------
// SweepReport.
// ---------------------------------------------------------------------------

/// Result row for one scenario variant.
struct SweepVariantRow {
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t digest = 0;
  bool incremental = false;  ///< served by cone-limited re-simulation
  double seconds = 0.0;
};

/// Aggregated outcome of one sweep batch.
struct SweepReport {
  std::vector<SweepVariantRow> rows;
  double wall_s = 0.0;
  int workers = 1;

  [[nodiscard]] double variants_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(rows.size()) / wall_s : 0.0;
  }
  [[nodiscard]] std::uint64_t incremental_runs() const {
    std::uint64_t n = 0;
    for (const SweepVariantRow& r : rows) n += r.incremental ? 1 : 0;
    return n;
  }
  /// Order-independent combination of the per-variant digests, so serial
  /// and pooled sweeps of the same variant set compare equal regardless of
  /// completion order.
  [[nodiscard]] std::uint64_t combined_digest() const {
    std::uint64_t x = 0, s = 0;
    for (const SweepVariantRow& r : rows) {
      x ^= r.digest;
      s += r.digest * 0x9e3779b97f4a7c15ull;
    }
    return x ^ s;
  }
};

}  // namespace cgsim

// cgsim -- interactive streaming sessions.
//
// The paper's workflow keeps the compute-graph prototype embedded in a
// live application (Section 1: "a fully functional application throughout
// the graph development process"). Batch invocation (`graph(in, out)`)
// covers offline runs; InteractiveSession covers the embedded case: the
// host pushes input elements as they become available (e.g. from a socket
// or sensor loop), the cooperative scheduler advances the graph as far as
// data allows, and finished outputs are polled back — all on the caller's
// thread, with no background machinery.
#pragma once

#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "channel.hpp"
#include "graph_view.hpp"
#include "runtime.hpp"
#include "types.hpp"

namespace cgsim {

/// A paused, incrementally-driven execution instance of a compute graph.
///
///   InteractiveSession s{graph.view()};
///   s.push<float>(0, 1.0f);
///   s.push<float>(1, 2.0f);
///   while (auto v = s.poll<float>(0)) consume(*v);
///   s.finish();   // end-of-stream: lets while(true) kernels terminate
class InteractiveSession {
 public:
  explicit InteractiveSession(const GraphView& g,
                              ExecMode mode = ExecMode::coop)
      : ctx_(g, require_coop(mode)), graph_(g) {
    // The host itself occupies the producer slot the flattened graph
    // reserves for each input's data source, and the consumer endpoint of
    // each output's sink; no source/sink coroutines are attached.
    ctx_.start_all();
    pump();
  }

  /// Feeds one element into global input `input_idx` and advances the
  /// graph. Returns false when the channel is full even after running the
  /// scheduler (downstream back-pressure) -- retry after polling outputs.
  template <class T>
  [[nodiscard]] bool push(std::size_t input_idx, const T& value) {
    auto* ch = input_channel<T>(input_idx);
    ChanStatus st = ch->try_push(value);
    if (st == ChanStatus::blocked) {
      pump();  // let consumers drain, then retry once
      st = ch->try_push(value);
    }
    if (st == ChanStatus::closed) {
      throw std::logic_error{"push into a finished session"};
    }
    pump();
    return st == ChanStatus::ok;
  }

  /// Feeds up to `n` elements into global input `input_idx`, advancing the
  /// graph whenever the channel fills. Returns the number accepted, which
  /// is less than `n` only under sustained downstream back-pressure (an
  /// un-polled output is full) -- drain outputs and push the rest. One
  /// bulk channel op per ring-full, not one per element.
  template <class T>
  std::size_t push_n(std::size_t input_idx, const T* src, std::size_t n) {
    auto* ch = input_channel<T>(input_idx);
    std::size_t done = 0;
    while (done < n) {
      ChanStatus st{};
      const std::size_t k = ch->try_push_n(src + done, n - done, st);
      done += k;
      if (st == ChanStatus::closed) {
        throw std::logic_error{"push into a finished session"};
      }
      const std::uint64_t before = resumes_;
      pump();
      if (k == 0 && resumes_ == before) break;  // graph is truly stuck
    }
    pump();
    return done;
  }

  /// Drains up to `n` finished elements from global output `output_idx`.
  template <class T>
  std::size_t poll_n(std::size_t output_idx, T* dst, std::size_t n) {
    const FlatGlobal& out = graph_.outputs[check_out(output_idx)];
    auto* ch = static_cast<TypedChannel<T>*>(ctx_.channel(out.edge));
    if (graph_.edges[static_cast<std::size_t>(out.edge)].type !=
        type_id<T>()) {
      throw TypeMismatchError{"session poll element type mismatch"};
    }
    std::size_t done = 0;
    while (done < n) {
      ChanStatus st{};
      const std::size_t k =
          ch->try_pop_n(out.endpoint, dst + done, n - done, st);
      done += k;
      const std::uint64_t before = resumes_;
      pump();  // popping may unblock producers, which may produce more
      if (k == 0 && resumes_ == before) break;
    }
    return done;
  }

  /// Retrieves the next available element from global output `output_idx`,
  /// or nullopt when the graph has not produced one yet.
  template <class T>
  [[nodiscard]] std::optional<T> poll(std::size_t output_idx) {
    const FlatGlobal& out = graph_.outputs[check_out(output_idx)];
    auto* ch =
        static_cast<TypedChannel<T>*>(ctx_.channel(out.edge));
    if (graph_.edges[static_cast<std::size_t>(out.edge)].type !=
        type_id<T>()) {
      throw TypeMismatchError{"session poll element type mismatch"};
    }
    T v{};
    const ChanStatus st = ch->try_pop(out.endpoint, v);
    pump();  // popping may unblock producers
    if (st == ChanStatus::ok) return v;
    return std::nullopt;
  }

  /// Signals end-of-stream on every input: kernels written as
  /// `while (true)` terminate through StreamClosed once drained.
  void finish() {
    if (finished_) return;
    finished_ = true;
    for (const FlatGlobal& in : graph_.inputs) {
      ctx_.channel(in.edge)->producer_done();
    }
    pump();
  }

  /// Rewinds the session to its freshly-constructed state for another
  /// streaming pass over the same graph instance: kernels are rebuilt,
  /// channels emptied and reopened, and the session accepts pushes again.
  /// Far cheaper than constructing a new session (no graph deserialization,
  /// no channel allocation).
  void resimulate() {
    ctx_.reset_for_rerun();
    finished_ = false;
    ctx_.start_all();
    pump();
  }

  /// True when every kernel has terminated (only meaningful after
  /// finish()).
  [[nodiscard]] bool drained() {
    for (const auto& rec : ctx_.tasks()) {
      if (!rec.task.done()) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t resumes() const { return resumes_; }

 private:
  /// A session runs the graph on the caller's thread between host pushes:
  /// the thread-per-kernel and worker-pool backends have no meaningful
  /// paused state to hand back, so only the cooperative mode is legal.
  static ExecMode require_coop(ExecMode mode) {
    if (mode != ExecMode::coop) {
      throw std::invalid_argument{
          "InteractiveSession requires ExecMode::coop; threaded and coop_mt "
          "backends cannot pause on the caller's thread"};
    }
    return mode;
  }

  /// Runs the scheduler to quiescence (cheap when nothing is runnable).
  void pump() {
    resumes_ += ctx_.scheduler().run(
        [this](std::coroutine_handle<> h) { ctx_.on_task_finished(h); });
  }

  template <class T>
  TypedChannel<T>* input_channel(std::size_t input_idx) {
    if (input_idx >= graph_.inputs.size()) {
      throw std::out_of_range{"session input index out of range"};
    }
    const FlatGlobal& in = graph_.inputs[input_idx];
    if (graph_.edges[static_cast<std::size_t>(in.edge)].type !=
        type_id<T>()) {
      throw TypeMismatchError{"session push element type mismatch"};
    }
    return static_cast<TypedChannel<T>*>(ctx_.channel(in.edge));
  }

  [[nodiscard]] std::size_t check_out(std::size_t idx) const {
    if (idx >= graph_.outputs.size()) {
      throw std::out_of_range{"session output index out of range"};
    }
    return idx;
  }

  RuntimeContext ctx_;
  GraphView graph_;
  bool finished_ = false;
  std::uint64_t resumes_ = 0;
};

}  // namespace cgsim

// cgsim -- Graphviz export of flattened compute graphs.
//
// Developer tooling around the serialized representation: renders any
// GraphView as a `dot` digraph with kernels as boxes (labelled with their
// realm), global I/O as ellipses, and edges annotated with element type
// and buffer mode. Handy while prototyping (paper Figure 2's "iterate on
// the graph" loop) and used by the examples.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

#include "graph_view.hpp"
#include "port_config.hpp"
#include "types.hpp"

namespace cgsim {

struct DotOptions {
  std::string graph_name = "compute_graph";
  bool show_types = true;
  bool show_buffer_modes = true;
};

/// Writes `g` as a Graphviz digraph to `os`.
inline void write_dot(std::ostream& os, const GraphView& g,
                      const DotOptions& opts = {}) {
  os << "digraph " << opts.graph_name << " {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"monospace\"];\n";
  // Kernel nodes.
  for (std::size_t k = 0; k < g.kernels.size(); ++k) {
    os << "  k" << k << " [shape=box,label=\"" << g.kernels[k].name << "\\n("
       << realm_name(g.kernels[k].realm) << ")\"];\n";
  }
  // Global I/O nodes.
  for (std::size_t i = 0; i < g.inputs.size(); ++i) {
    os << "  in" << i << " [shape=ellipse,label=\"in" << i << "\"];\n";
  }
  for (std::size_t o = 0; o < g.outputs.size(); ++o) {
    os << "  out" << o << " [shape=ellipse,label=\"out" << o << "\"];\n";
  }

  auto edge_label = [&](int e) {
    const FlatEdge& fe = g.edges[static_cast<std::size_t>(e)];
    std::ostringstream lbl;
    if (opts.show_types) lbl << fe.vtable().type_name;
    if (opts.show_buffer_modes &&
        fe.settings.buffer != BufferMode::unspecified) {
      lbl << (opts.show_types ? "\\n" : "")
          << buffer_mode_name(fe.settings.buffer);
    }
    if (fe.settings.rtp) lbl << (lbl.str().empty() ? "" : "\\n") << "RTP";
    return lbl.str();
  };

  // Data edges: every producer endpoint connects to every consumer
  // endpoint of the same channel (broadcast/merge semantics).
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    std::vector<std::string> sources;
    std::vector<std::string> sinks;
    for (std::size_t k = 0; k < g.kernels.size(); ++k) {
      const FlatKernel& fk = g.kernels[k];
      for (int p = 0; p < fk.nports; ++p) {
        const FlatPort& fp =
            g.ports[static_cast<std::size_t>(fk.first_port + p)];
        if (fp.edge != static_cast<int>(e)) continue;
        (fp.is_read ? sinks : sources).push_back("k" + std::to_string(k));
      }
    }
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (g.inputs[i].edge == static_cast<int>(e)) {
        sources.push_back("in" + std::to_string(i));
      }
    }
    for (std::size_t o = 0; o < g.outputs.size(); ++o) {
      if (g.outputs[o].edge == static_cast<int>(e)) {
        sinks.push_back("out" + std::to_string(o));
      }
    }
    for (const std::string& s : sources) {
      for (const std::string& d : sinks) {
        os << "  " << s << " -> " << d << " [label=\"" << edge_label(
               static_cast<int>(e))
           << "\"];\n";
      }
    }
  }
  os << "}\n";
}

/// Convenience: the dot text as a string.
[[nodiscard]] inline std::string to_dot(const GraphView& g,
                                        const DotOptions& opts = {}) {
  std::ostringstream os;
  write_dot(os, g, opts);
  return os.str();
}

}  // namespace cgsim

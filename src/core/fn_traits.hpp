// cgsim -- minimal function-signature introspection.
//
// Used to recover kernel port types from the COMPUTE_KERNEL body signature
// and global I/O connector types from the graph definition lambda.
#pragma once

#include <cstddef>
#include <tuple>

namespace cgsim {

template <class F>
struct fn_traits;

template <class R, class... As>
struct fn_traits<R (*)(As...)> {
  using result = R;
  using args_tuple = std::tuple<As...>;
  static constexpr std::size_t arity = sizeof...(As);
  template <std::size_t I>
  using arg = std::tuple_element_t<I, std::tuple<As...>>;
};

template <class R, class... As>
struct fn_traits<R (As...)> : fn_traits<R (*)(As...)> {};

// Member operator() of (capture-less, non-generic) lambdas.
template <class C, class R, class... As>
struct fn_traits<R (C::*)(As...) const> : fn_traits<R (*)(As...)> {};

template <class L>
  requires requires { &L::operator(); }
struct fn_traits<L> : fn_traits<decltype(&L::operator())> {};

}  // namespace cgsim

// cgsim -- compute-graph partitioning for sharded cooperative simulation
// (ExecMode::coop_mt).
//
// The flattened graph is split into shards, each run by its own
// cooperative scheduler on a dedicated worker thread. The partitioner
// works in two stages:
//
//   1. Connected components. Kernels that share an edge are grouped with a
//      union-find; disjoint subgraphs (the common case for replicated
//      pipelines / multi-channel DSP graphs) parallelize with zero
//      cross-shard traffic.
//   2. Greedy edge-cut split. When there are fewer components than
//      requested shards and a component is oversized, it is bisected along
//      a BFS frontier (a cheap edge-cut heuristic: BFS layers cut few
//      edges on pipeline-shaped graphs). Runtime-parameter (RTP) edges are
//      contracted first and never cut -- the sticky RTP channel is
//      single-threaded by construction.
//
// Every edge is then classified: `edge_cross[e]` marks edges whose kernel
// endpoints span shards (backed by the lock-light ShardChannel at run
// time); `edge_home[e]` names the shard that owns the edge's single-
// threaded state and hosts any global source/sink task attached to it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph_view.hpp"

namespace cgsim {

/// Shard assignment of one flattened graph.
struct Partition {
  int n_shards = 1;
  std::vector<int> kernel_shard;        ///< per kernel: owning shard
  std::vector<int> edge_home;           ///< per edge: owning shard
  std::vector<std::uint8_t> edge_cross; ///< per edge: endpoints span shards
  int n_cross_edges = 0;
  int n_components = 0;  ///< connected components before any split
};

namespace detail {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace detail

/// Partitions `g` into at most `max_shards` shards. `max_shards < 1` is
/// treated as 1; the result never has more shards than kernels (a graph
/// with no kernels gets one shard).
[[nodiscard]] inline Partition partition_graph(const GraphView& g,
                                               int max_shards) {
  const std::size_t nk = g.kernels.size();
  const std::size_t ne = g.edges.size();
  Partition p;
  p.kernel_shard.assign(nk, 0);
  p.edge_home.assign(ne, 0);
  p.edge_cross.assign(ne, 0);
  if (nk == 0) {
    p.n_components = ne == 0 ? 0 : 1;
    return p;
  }
  const int want =
      std::clamp(max_shards, 1, static_cast<int>(nk));

  // Kernel endpoints per edge, with read/write direction.
  struct Endpoint {
    int kernel;
    bool is_read;
  };
  std::vector<std::vector<Endpoint>> edge_kernels(ne);
  for (std::size_t ki = 0; ki < nk; ++ki) {
    const FlatKernel& k = g.kernels[ki];
    for (int pi = 0; pi < k.nports; ++pi) {
      const FlatPort& fp = g.ports[static_cast<std::size_t>(k.first_port + pi)];
      edge_kernels[static_cast<std::size_t>(fp.edge)].push_back(
          {static_cast<int>(ki), fp.is_read});
    }
  }

  // Stage 1: connected components; RTP edges additionally contract their
  // endpoints into atomic groups that any later split must keep together.
  detail::UnionFind comp(nk);
  detail::UnionFind rtp(nk);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto& eps = edge_kernels[e];
    for (std::size_t i = 1; i < eps.size(); ++i) {
      comp.unite(static_cast<std::size_t>(eps[0].kernel),
                 static_cast<std::size_t>(eps[i].kernel));
      if (g.edges[e].settings.rtp) {
        rtp.unite(static_cast<std::size_t>(eps[0].kernel),
                  static_cast<std::size_t>(eps[i].kernel));
      }
    }
  }

  // Blocks: the unit of shard assignment. Initially one block per
  // component; oversized blocks may be split below.
  std::vector<int> block_of(nk, -1);
  std::vector<std::vector<int>> blocks;
  for (std::size_t k = 0; k < nk; ++k) {
    const std::size_t root = comp.find(k);
    if (block_of[root] < 0) {
      block_of[root] = static_cast<int>(blocks.size());
      blocks.emplace_back();
    }
    block_of[k] = block_of[root];
    blocks[static_cast<std::size_t>(block_of[root])].push_back(
        static_cast<int>(k));
  }
  p.n_components = static_cast<int>(blocks.size());

  // Kernel adjacency over non-RTP edges, for the BFS split. RTP-grouped
  // kernels are traversed as one supernode by seeding the whole group.
  std::vector<std::vector<int>> adj(nk);
  for (std::size_t e = 0; e < ne; ++e) {
    if (g.edges[e].settings.rtp) continue;
    const auto& eps = edge_kernels[e];
    for (std::size_t i = 1; i < eps.size(); ++i) {
      adj[static_cast<std::size_t>(eps[0].kernel)].push_back(eps[i].kernel);
      adj[static_cast<std::size_t>(eps[i].kernel)].push_back(eps[0].kernel);
    }
  }
  // Members of each RTP group, looked up by any member.
  std::vector<std::vector<int>> rtp_group(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    rtp_group[rtp.find(k)].push_back(static_cast<int>(k));
  }

  // Stage 2: while there are spare shards, bisect the largest splittable
  // block along a BFS frontier over RTP groups.
  auto block_size_cmp = [&](int a, int b) {
    return blocks[static_cast<std::size_t>(a)].size() <
           blocks[static_cast<std::size_t>(b)].size();
  };
  std::vector<std::uint8_t> unsplittable(blocks.size(), 0);
  while (static_cast<int>(blocks.size()) < want) {
    int big = -1;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (unsplittable[b] || blocks[b].size() < 2) continue;
      if (big < 0 || block_size_cmp(big, static_cast<int>(b))) {
        big = static_cast<int>(b);
      }
    }
    if (big < 0) break;  // nothing left to split
    auto& members = blocks[static_cast<std::size_t>(big)];
    const std::size_t half = (members.size() + 1) / 2;
    // BFS from the first member; pull whole RTP groups per visit.
    std::vector<std::uint8_t> in_block(nk, 0);
    for (int k : members) in_block[static_cast<std::size_t>(k)] = 1;
    std::vector<std::uint8_t> taken(nk, 0);
    std::vector<int> queue;
    std::vector<int> part_a;
    auto take_group = [&](int k) {
      for (int m : rtp_group[rtp.find(static_cast<std::size_t>(k))]) {
        if (taken[static_cast<std::size_t>(m)]) continue;
        taken[static_cast<std::size_t>(m)] = 1;
        part_a.push_back(m);
        queue.push_back(m);
      }
    };
    take_group(members.front());
    std::size_t qi = 0;
    while (part_a.size() < half) {
      if (qi == queue.size()) {
        // Disconnected remainder inside the block (possible only via
        // global-port-only links): seed the next untaken member.
        int next = -1;
        for (int k : members) {
          if (!taken[static_cast<std::size_t>(k)]) {
            next = k;
            break;
          }
        }
        if (next < 0) break;
        take_group(next);
        continue;
      }
      const int k = queue[qi++];
      for (int nb : adj[static_cast<std::size_t>(k)]) {
        if (!in_block[static_cast<std::size_t>(nb)] ||
            taken[static_cast<std::size_t>(nb)]) {
          continue;
        }
        take_group(nb);
        if (part_a.size() >= half) break;
      }
    }
    if (part_a.empty() || part_a.size() == members.size()) {
      unsplittable[static_cast<std::size_t>(big)] = 1;
      continue;
    }
    std::vector<int> part_b;
    for (int k : members) {
      if (!taken[static_cast<std::size_t>(k)]) part_b.push_back(k);
    }
    members = std::move(part_a);
    blocks.push_back(std::move(part_b));
    unsplittable.push_back(0);  // keep in lockstep with blocks
  }

  // Assign blocks to shards, largest first onto the least-loaded shard.
  const int n_shards =
      std::min(want, static_cast<int>(blocks.size()));
  std::vector<int> order(blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return block_size_cmp(b, a); });
  std::vector<std::size_t> load(static_cast<std::size_t>(n_shards), 0);
  for (int b : order) {
    const auto s = static_cast<std::size_t>(std::min_element(load.begin(),
                                                             load.end()) -
                                            load.begin());
    load[s] += blocks[static_cast<std::size_t>(b)].size();
    for (int k : blocks[static_cast<std::size_t>(b)]) {
      p.kernel_shard[static_cast<std::size_t>(k)] = static_cast<int>(s);
    }
  }
  p.n_shards = n_shards;

  // Edge classification. The home shard prefers the first producer kernel
  // (its pushes then stay shard-local on intra-shard edges); an edge with
  // no kernel endpoints (global passthrough) lives on shard 0.
  for (std::size_t e = 0; e < ne; ++e) {
    const auto& eps = edge_kernels[e];
    if (eps.empty()) continue;
    int home = -1;
    bool cross = false;
    for (const auto& ep : eps) {
      const int s = p.kernel_shard[static_cast<std::size_t>(ep.kernel)];
      if (home < 0) {
        home = s;
      } else if (s != home) {
        cross = true;
      }
      if (!ep.is_read) home = s;  // last writer wins: producer-side home
    }
    for (const auto& ep : eps) {
      if (!ep.is_read) {
        home = p.kernel_shard[static_cast<std::size_t>(ep.kernel)];
        break;
      }
    }
    p.edge_home[e] = home;
    p.edge_cross[e] = cross ? 1 : 0;
    if (cross) ++p.n_cross_edges;
  }
  return p;
}

}  // namespace cgsim

// cgsim -- the flattened, array-based compute-graph representation
// (paper Section 3.5).
//
// Compile-time graph construction produces a pointer-based object graph on
// the constexpr heap, which cannot outlive constant evaluation. Flattening
// rewrites it into the index-based structures below, which can be stored in
// a constexpr variable and travel from compile time into run time (for the
// graph runtime) or into the extractor (for code generation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ct_graph.hpp"
#include "port_config.hpp"
#include "steal.hpp"
#include "types.hpp"

namespace cgsim {

/// One stream connection, with settings merged over all endpoints.
struct FlatEdge {
  TypeId type = nullptr;
  VTableFn vtable = nullptr;
  PortSettings settings{};
  int capacity = kDefaultChannelCapacity;
  Attribute attrs[kMaxAttrsPerEdge]{};
  int n_attrs = 0;
  int n_producers = 0;  ///< kernel write ports + global inputs
  int n_consumers = 0;  ///< kernel read ports + global outputs
};

/// One kernel I/O endpoint. `endpoint` is the broadcast consumer slot for
/// read ports (-1 for write ports).
struct FlatPort {
  bool is_read = false;
  int edge = -1;
  PortSettings settings{};
  int endpoint = -1;
};

/// One kernel instantiation; `thunk` reconstructs the typed kernel at run
/// time (paper Section 3.6) and doubles as the extractor's source of type
/// information (Section 4.2).
struct FlatKernel {
  std::string_view name{};
  Realm realm = Realm::aie;
  KernelThunk thunk = nullptr;
  int first_port = 0;
  int nports = 0;
};

/// One global graph input or output (paper Section 3.7). `endpoint` is the
/// broadcast consumer slot for outputs (-1 for inputs).
struct FlatGlobal {
  int edge = -1;
  TypeId type = nullptr;
  int endpoint = -1;
};

/// Non-owning, type-erased view over any flattened graph; everything
/// downstream of construction (runtime, simulators, extractor) consumes
/// this instead of the size-templated FlatGraph.
struct GraphView {
  std::span<const FlatKernel> kernels;
  std::span<const FlatPort> ports;
  std::span<const FlatEdge> edges;
  std::span<const FlatGlobal> inputs;
  std::span<const FlatGlobal> outputs;
};

/// Execution statistics returned by a graph run.
struct RunResult {
  std::uint64_t resumes = 0;          ///< coroutine resumptions
  std::uint64_t items_consumed = 0;   ///< elements delivered into sinks
  int kernels_completed = 0;          ///< kernels that terminated cleanly
  int kernels_destroyed = 0;          ///< kernels reaped while suspended
  bool deadlocked = false;            ///< quiescence with unfinished kernels
  std::vector<std::string> blocked_kernels;
  std::uint64_t virtual_cycles = 0;   ///< cycle-approximate backend only
  int shards_used = 0;                ///< coop_mt only: worker shards run
  std::uint64_t steals = 0;           ///< coop_mt + steal: shard migrations
  /// coop_mt only: per-worker resume/steal/busy statistics of the run.
  std::vector<WorkerLoad> worker_loads;
};

/// Options for a graph run.
struct RunOptions {
  ExecMode mode = ExecMode::coop;
  int repetitions = 1;  ///< how many times sources replay their data
  /// coop_mt only: worker-shard count ceiling; 0 = hardware concurrency.
  int workers = 0;
  /// coop_mt only: run M workers over an over-partitioned shard set with
  /// Chase-Lev work stealing instead of one pinned worker per shard.
  bool steal = false;
  /// coop_mt + steal only: shard count override; 0 = ~4x the worker count
  /// (clamped to the kernel count by the partitioner).
  int shards = 0;
};

}  // namespace cgsim

// cgsim -- work-stealing primitives for sharded cooperative execution.
//
// StealDeque is a bounded Chase-Lev deque (Chase & Lev, SPAA'05, with the
// C11 memory-order treatment of Lê et al., PPoPP'13): the owning worker
// pushes/pops at the bottom, thieves steal from the top. Two deliberate
// deviations from the textbook version:
//
//   * The buffer holds std::atomic<T> cells and never grows. cgsim's steal
//     unit is a *shard*, and a shard is enqueued at most once at any moment
//     (see StealingShardPool's shard state machine), so a capacity of
//     next_pow2(n_shards) can never overflow. Bounding removes the
//     grow-time ABA hazards of the classic algorithm, and atomic cells keep
//     the code data-race-free for TSan without relying on fence semantics.
//   * All cross-thread orderings use seq_cst operations on top_/bottom_
//     instead of standalone std::atomic_thread_fence -- TSan models atomic
//     operations precisely but historically under-models fences, and the
//     deque is far from any performance-critical path (one operation per
//     shard activation, not per task resume).
//
// The items must be trivially copyable (shard indices in practice).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace cgsim {

/// Per-worker execution statistics for one coop_mt run, reported through
/// RunResult so the scheduling ablation can diagnose load imbalance.
struct WorkerLoad {
  std::uint64_t resumes = 0;         ///< coroutine resumptions on this worker
  std::uint64_t steals = 0;          ///< shards acquired from another deque
  std::uint64_t steal_attempts = 0;  ///< steal probes, successful or not
  double busy_s = 0.0;               ///< wall time minus time parked
};

/// Bounded single-owner / multi-thief deque. Owner calls push_bottom and
/// pop_bottom; any other thread may call steal_top concurrently.
template <class T>
class StealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "StealDeque items are copied through atomic cells");

 public:
  explicit StealDeque(std::size_t capacity_hint) {
    std::size_t cap = 16;
    while (cap < capacity_hint) cap <<= 1;
    buf_ = std::make_unique<std::atomic<T>[]>(cap);
    mask_ = static_cast<std::int64_t>(cap) - 1;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(mask_) + 1;
  }

  /// Approximate occupancy; exact only when called by the owner with no
  /// concurrent thieves. Used for heuristics and tests.
  [[nodiscard]] std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Owner only. Returns false when the deque is full (never happens when
  /// capacity >= the number of distinct items in flight).
  bool push_bottom(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > mask_) return false;  // full
    buf_[b & mask_].store(v, std::memory_order_relaxed);
    // Publish the cell before the new bottom; a thief acquiring bottom_
    // (or winning the top_ CAS) observes the stored value.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. LIFO pop from the bottom; loses to a thief only on the
  /// last remaining element.
  bool pop_bottom(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    T v = buf_[b & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Single element left: race the thieves for it via top_.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return false;
    }
    out = v;
    return true;
  }

  /// Any thread. FIFO steal from the top. Returns false when empty or when
  /// the CAS loses a race (callers treat both as "try elsewhere").
  bool steal_top(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;  // empty
    T v = buf_[t & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost to the owner or another thief
    }
    out = v;
    return true;
  }

 private:
  std::unique_ptr<std::atomic<T>[]> buf_;
  std::int64_t mask_ = 0;
  // top_ <= bottom_; thieves advance top_, the owner moves bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace cgsim

// cgsim -- MPMC broadcast channels connecting kernels (paper Section 3.6).
//
// Semantics: fixed capacity; every consumer endpoint receives a complete
// copy of all data written to the channel (broadcast); data from a single
// producer stays ordered, data from multiple producers may interleave.
//
// The cooperative backends use a *completion-based* protocol: a kernel that
// cannot make progress registers a waiter record pointing into its awaiter
// frame, and the channel itself performs the transfer the moment it becomes
// possible, then hands the coroutine back to the executor. This makes every
// wake-up productive (no spurious retries), which is where cgsim's
// near-zero synchronization overhead (paper Section 5.2) comes from.
//
// Besides the per-element operations there is a bulk interface
// (try_push_n / try_pop_n plus bulk waiter records) that moves a whole
// window of elements per suspension with contiguous ring copies, split at
// the wrap point. Bulk waiters drain *incrementally* while parked, so a
// batch larger than the ring capacity still completes (the transfer streams
// through the ring in capacity-sized pieces).
//
// Three backends share one interface:
//   * CoopChannel     -- completion-based, single-threaded; also serves the
//                        cycle-approximate backend via per-item virtual-time
//                        stamps (SimHooks). Declared `final` so ports that
//                        know the execution mode can call its methods
//                        without virtual dispatch (see ports.hpp).
//   * ThreadedChannel -- mutex/condition-variable blocking ops for the
//                        thread-per-kernel x86sim-style runtime.
//   * RtpChannel      -- sticky single-value channel backing AIE runtime
//                        parameters (paper Section 3.7). Rejects bulk ops.
//   * ShardChannel    -- lock-light bounded MPMC ring for cross-shard edges
//                        of a coop_mt run: acquire/release cursors on the
//                        uncontended path, a control mutex only for waiter
//                        parking and closure, and a Dekker-style fence
//                        handshake so a publishing side never misses a
//                        parked peer.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "port_config.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Virtual-time hooks for the cycle-approximate backend. The engine knows
/// which kernel is currently executing and what its tile clock reads.
class SimHooks {
 public:
  virtual ~SimHooks() = default;
  /// Virtual time (cycles) of the currently running kernel.
  [[nodiscard]] virtual std::uint64_t now() const = 0;
  /// Charges stream/buffer access cost for one element of `elem_bytes`
  /// moved through the port bound to `ch` with the given settings to the
  /// currently running kernel.
  virtual void charge_port_access(const PortSettings& s,
                                  std::size_t elem_bytes, bool is_read,
                                  const ChannelBase* ch) = 0;
};

/// Outcome of a non-blocking channel operation.
enum class ChanStatus : std::uint8_t {
  ok,       ///< transferred the requested element(s)
  blocked,  ///< would block (full / empty); caller should suspend
  closed,   ///< permanently unusable in this direction
};

/// Type-erased channel base: lifecycle, closure bookkeeping and statistics.
class ChannelBase {
 public:
  explicit ChannelBase(int consumers) : consumers_total_(consumers) {}
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  virtual void set_producers(int n) {
    producers_open_ = n;
    producers_total_ = n;
  }
  void set_debug_name(std::string name) { debug_name_ = std::move(name); }
  [[nodiscard]] const std::string& debug_name() const { return debug_name_; }

  /// Dense id of the graph edge this channel was deserialized from (set by
  /// RuntimeContext; -1 for standalone channels). Backends use it to index
  /// flat per-edge tables instead of hashing channel pointers.
  void set_edge_id(int id) { edge_id_ = id; }
  [[nodiscard]] int edge_id() const { return edge_id_; }

  /// One producer endpoint finished; closing the last one releases blocked
  /// consumers with ChanStatus::closed once the buffer drains.
  virtual void producer_done() = 0;
  /// One consumer endpoint finished; its cursor stops constraining ring
  /// reuse, and closing the last one releases blocked producers.
  virtual void consumer_done(int consumer) = 0;

  [[nodiscard]] int consumers() const { return consumers_total_; }
  [[nodiscard]] int producers_open() const { return producers_open_; }
  [[nodiscard]] int consumers_open() const { return consumers_open_; }
  [[nodiscard]] bool push_closed() const {
    return producers_total_ > 0 && producers_open_ == 0;
  }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t popped(int consumer) const {
    return popped_.empty() ? 0 : popped_[static_cast<std::size_t>(consumer)];
  }

  /// How many push operations had to park on a full ring so far. The
  /// incremental re-simulation layer uses this as its exactness guard: an
  /// edge whose producers never felt backpressure can be replayed from a
  /// recording without re-running them.
  [[nodiscard]] virtual std::uint64_t push_parks() const { return 0; }

  /// Returns the channel to its freshly-constructed state (buffers empty,
  /// endpoints reopened, statistics zeroed) while keeping its allocations,
  /// so the same graph instance can be run again without rebuilding
  /// channels. Only the single-threaded backends support this; the
  /// threaded/shard backends throw.
  virtual void reset_for_rerun() {
    throw std::logic_error{
        "reset_for_rerun is not supported by this channel backend"};
  }

  /// Attaches virtual-time hooks (cycle-approximate backend only).
  virtual void attach_sim_hooks(SimHooks*) {}

 protected:
  /// Shared half of reset_for_rerun() for the backends that support it.
  void reset_base_for_rerun() {
    producers_open_ = producers_total_;
    consumers_open_ = consumers_total_;
    pushed_ = 0;
    std::fill(popped_.begin(), popped_.end(), 0);
  }

  int consumers_total_ = 0;
  int producers_total_ = 0;
  int producers_open_ = 0;
  int consumers_open_ = 0;
  std::uint64_t pushed_ = 0;
  std::vector<std::uint64_t> popped_;
  std::string debug_name_;
  int edge_id_ = -1;
};

/// Typed channel operations. `consumer` identifies the broadcast endpoint.
template <class T>
class TypedChannel : public ChannelBase {
 public:
  using ChannelBase::ChannelBase;

  /// Pending push registered by a suspending producer. The channel performs
  /// `*value -> ring` itself when space appears, sets `*status`, and hands
  /// `h` to the executor. All pointers live in the awaiter frame, which is
  /// stable while the coroutine is suspended.
  struct PushWaiter {
    const T* value;
    ChanStatus* status;
    std::coroutine_handle<> h;
  };
  /// Pending pop registered by a suspending consumer.
  struct PopWaiter {
    T* out;
    ChanStatus* status;
    std::coroutine_handle<> h;
    int consumer;
  };

  /// Pending bulk push: `src[done..n)` still has to enter the ring. The
  /// channel advances `done` incrementally as space appears and completes
  /// the waiter (writing `*moved`, `*status`, waking `h`) only when the
  /// whole batch is in or the transfer becomes impossible.
  struct BulkPushWaiter {
    const T* src;
    std::size_t n;
    std::size_t done;
    std::size_t* moved;
    ChanStatus* status;
    std::coroutine_handle<> h;
  };
  /// Pending bulk pop: `dst[done..n)` still has to be filled. `max_stamp`
  /// tracks the newest virtual-time stamp consumed so the wake-up can be
  /// scheduled at the batch's arrival time (cycle-approximate backend).
  struct BulkPopWaiter {
    T* dst;
    std::size_t n;
    std::size_t done;
    std::size_t* moved;
    ChanStatus* status;
    std::coroutine_handle<> h;
    int consumer;
    std::uint64_t max_stamp;
  };

  // --- cooperative (non-blocking fast path + completion registration) ---
  virtual ChanStatus try_push(const T& v) = 0;
  virtual ChanStatus try_pop(int consumer, T& out) = 0;
  /// Registers `w`; may complete it synchronously (executor notified) when
  /// the operation is already possible or permanently impossible.
  virtual void add_push_waiter(PushWaiter w) = 0;
  virtual void add_pop_waiter(PopWaiter w) = 0;

  // --- cooperative bulk (window-at-a-time transfers) ---
  /// Moves up to `n` elements, returning the count moved. `st` becomes ok
  /// when the full batch moved, closed when the channel is terminally
  /// unusable in this direction, blocked otherwise. Only the ring-buffered
  /// cooperative channel supports these; RTP channels reject them.
  virtual std::size_t try_push_n(const T* /*src*/, std::size_t /*n*/,
                                 ChanStatus& /*st*/) {
    reject_bulk();
  }
  virtual std::size_t try_pop_n(int /*consumer*/, T* /*dst*/,
                                std::size_t /*n*/, ChanStatus& /*st*/) {
    reject_bulk();
  }
  virtual void add_bulk_push_waiter(BulkPushWaiter /*w*/) { reject_bulk(); }
  virtual void add_bulk_pop_waiter(BulkPopWaiter /*w*/) { reject_bulk(); }

  // --- threaded (blocking; return false when closed) ---
  virtual bool blocking_push(const T& v) = 0;
  virtual bool blocking_pop(int consumer, T& out) = 0;

 private:
  [[noreturn]] static void reject_bulk() {
    throw std::logic_error{
        "bulk channel ops are not supported by this channel"};
  }
};

/// Cooperative broadcast ring buffer. Single-threaded by construction; no
/// locks, no atomics. `final`: ports bound in a cooperative mode call these
/// methods through a concrete CoopChannel<T>*, so every call in the
/// simulation hot loop binds statically and inlines.
template <class T>
class CoopChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;
  using typename TypedChannel<T>::BulkPushWaiter;
  using typename TypedChannel<T>::BulkPopWaiter;

 public:
  CoopChannel(int consumers, int capacity, Executor* exec)
      : TypedChannel<T>(consumers),
        capacity_(static_cast<std::size_t>(std::max(capacity, 1))),
        slots_(capacity_),
        cursors_(static_cast<std::size_t>(consumers), 0),
        consumer_active_(static_cast<std::size_t>(consumers), 1),
        pop_waiters_(static_cast<std::size_t>(consumers)),
        bulk_pop_waiters_(static_cast<std::size_t>(consumers)),
        exec_(exec) {
    this->popped_.assign(static_cast<std::size_t>(consumers), 0);
    this->consumers_open_ = consumers;
  }

  ChanStatus try_push(const T& v) override {
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      return ChanStatus::closed;  // nobody will ever read again
    }
    if (ring_full()) return ChanStatus::blocked;
    raw_write(&v, 1);
    service_waiters();
    return ChanStatus::ok;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    const auto c = static_cast<std::size_t>(consumer);
    if (cursors_[c] == head_) {
      return this->push_closed() ? ChanStatus::closed : ChanStatus::blocked;
    }
    if (sim_ != nullptr && stamps_[cursors_[c] % capacity_] > sim_->now()) {
      // The element exists but has not yet arrived in virtual time; the
      // caller suspends and the completion path schedules the wake at the
      // element's stamp.
      return ChanStatus::blocked;
    }
    raw_read(c, &out, 1);
    service_waiters();
    return ChanStatus::ok;
  }

  void add_push_waiter(PushWaiter w) override {
    // Completion may already be possible (or impossible); check-then-park.
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    if (!ring_full()) {
      raw_write(w.value, 1);
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, now_or_zero());
      service_waiters();
      return;
    }
    push_waiters_.push_back(w);
    ++parked_;
    ++push_parks_;
  }

  void add_pop_waiter(PopWaiter w) override {
    const auto c = static_cast<std::size_t>(w.consumer);
    if (cursors_[c] != head_) {
      const std::uint64_t stamp =
          sim_ != nullptr ? stamps_[cursors_[c] % capacity_] : 0;
      raw_read(c, w.out, 1);
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, stamp);
      service_waiters();
      return;
    }
    if (this->push_closed()) {
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    pop_waiters_[c].push_back(w);
    ++parked_;
  }

  std::size_t try_push_n(const T* src, std::size_t n,
                         ChanStatus& st) override {
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      st = ChanStatus::closed;
      return 0;
    }
    if (this->consumers_total_ == 0) {
      // No consumers: writes are discarded after updating statistics, but
      // still pass through the ring (chunked) so behaviour matches the
      // scalar path.
      std::size_t left = n;
      const T* p = src;
      while (left > 0) {
        const std::size_t chunk = std::min(left, capacity_);
        raw_write(p, chunk);
        p += chunk;
        left -= chunk;
      }
      st = ChanStatus::ok;
      return n;
    }
    const std::size_t k = std::min(n, free_slots());
    if (k > 0) {
      raw_write(src, k);
      service_waiters();
    }
    st = k == n ? ChanStatus::ok : ChanStatus::blocked;
    return k;
  }

  std::size_t try_pop_n(int consumer, T* dst, std::size_t n,
                        ChanStatus& st) override {
    const auto c = static_cast<std::size_t>(consumer);
    std::size_t avail = static_cast<std::size_t>(head_ - cursors_[c]);
    if (sim_ != nullptr && avail > 0) {
      // Elements past the first not-yet-arrived stamp are still in flight
      // in virtual time.
      const std::uint64_t now = sim_->now();
      std::size_t ready = 0;
      while (ready < avail &&
             stamps_[(cursors_[c] + ready) % capacity_] <= now) {
        ++ready;
      }
      avail = ready;
    }
    const std::size_t k = std::min(n, avail);
    if (k > 0) {
      raw_read(c, dst, k);
      service_waiters();
    }
    if (k == n) {
      st = ChanStatus::ok;
    } else if (this->push_closed() && cursors_[c] == head_) {
      st = ChanStatus::closed;  // partial transfer at end-of-stream
    } else {
      st = ChanStatus::blocked;
    }
    return k;
  }

  void add_bulk_push_waiter(BulkPushWaiter w) override {
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      *w.moved = w.done;
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    if (this->consumers_total_ == 0) {
      ChanStatus st{};
      try_push_n(w.src + w.done, w.n - w.done, st);
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    const std::size_t k = std::min(w.n - w.done, free_slots());
    if (k > 0) {
      raw_write(w.src + w.done, k);
      w.done += k;
    }
    if (w.done == w.n) {
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, now_or_zero());
    } else {
      bulk_push_waiters_.push_back(w);
      ++parked_;
      ++push_parks_;
    }
    service_waiters();
  }

  void add_bulk_pop_waiter(BulkPopWaiter w) override {
    const auto c = static_cast<std::size_t>(w.consumer);
    // Like the scalar completion path, a parked bulk pop consumes buffered
    // data regardless of its stamp; the wake is scheduled at the newest
    // consumed stamp instead.
    drain_into(w);
    if (w.done == w.n) {
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, w.max_stamp);
    } else if (this->push_closed() && cursors_[c] == head_) {
      *w.moved = w.done;
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, std::max(w.max_stamp, now_or_zero()));
    } else {
      bulk_pop_waiters_[c].push_back(w);
      ++parked_;
    }
    service_waiters();
  }

  bool blocking_push(const T&) override { unreachable_blocking(); }
  bool blocking_pop(int, T&) override { unreachable_blocking(); }

  void producer_done() override {
    if (--this->producers_open_ == 0) {
      // Consumers that already drained everything observe end-of-stream;
      // parked bulk pops complete with whatever partial batch they hold.
      for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
        if (cursors_[c] != head_) continue;  // still has data to read
        parked_ -= pop_waiters_[c].size() + bulk_pop_waiters_[c].size();
        for (auto& w : pop_waiters_[c]) {
          *w.status = ChanStatus::closed;
          exec_->make_ready(w.h, now_or_zero());
        }
        pop_waiters_[c].clear();
        for (auto& w : bulk_pop_waiters_[c]) {
          *w.moved = w.done;
          *w.status = ChanStatus::closed;
          exec_->make_ready(w.h, std::max(w.max_stamp, now_or_zero()));
        }
        bulk_pop_waiters_[c].clear();
      }
    }
  }

  void consumer_done(int consumer) override {
    const auto c = static_cast<std::size_t>(consumer);
    if (consumer_active_[c] == 0) return;
    consumer_active_[c] = 0;
    --this->consumers_open_;
    if (this->consumers_open_ == 0) {
      parked_ -= push_waiters_.size() + bulk_push_waiters_.size();
      for (auto& w : push_waiters_) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, now_or_zero());
      }
      push_waiters_.clear();
      for (auto& w : bulk_push_waiters_) {
        *w.moved = w.done;
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, now_or_zero());
      }
      bulk_push_waiters_.clear();
    } else {
      recompute_min_cursor();  // this cursor no longer limits ring reuse
      service_waiters();
    }
  }

  void attach_sim_hooks(SimHooks* hooks) override {
    sim_ = hooks;
    // Stamp storage is paid for only when a virtual-time engine attaches.
    if (stamps_.size() != capacity_) stamps_.assign(capacity_, 0);
  }

  [[nodiscard]] std::uint64_t push_parks() const override {
    return push_parks_;
  }

  void reset_for_rerun() override {
    this->reset_base_for_rerun();
    head_ = 0;
    std::fill(cursors_.begin(), cursors_.end(), 0);
    min_cursor_ = 0;
    std::fill(consumer_active_.begin(), consumer_active_.end(), 1);
    for (auto& q : pop_waiters_) q.clear();
    for (auto& q : bulk_pop_waiters_) q.clear();
    push_waiters_.clear();
    bulk_push_waiters_.clear();
    parked_ = 0;
    push_parks_ = 0;
    tap_ = nullptr;  // recordings are re-attached per run by their owner
    has_forced_stamp_ = false;
    // stamps_ need no clearing: a stamp is only read for ring positions
    // between a consumer cursor and head_, which a push wrote first.
  }

  /// Directs all future pushes into `tap` (see EdgeTap). Pass nullptr to
  /// stop recording. Requires a trivially-copyable element type.
  void set_tap(EdgeTap* tap) {
    static_assert(std::is_trivially_copyable_v<T>);
    tap_ = tap;
  }

  /// Overrides the virtual-time stamp of subsequent pushes (replay of a
  /// recorded edge). Stays in effect until cleared, which also covers a
  /// parked replay push completed later from service_waiters() -- sound
  /// because a replay task is the edge's only producer.
  void set_forced_stamp(std::uint64_t t) {
    forced_stamp_ = t;
    has_forced_stamp_ = true;
  }
  void clear_forced_stamp() { has_forced_stamp_ = false; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t occupancy(int consumer) const {
    return static_cast<std::size_t>(
        head_ - cursors_[static_cast<std::size_t>(consumer)]);
  }

 private:
  [[noreturn]] static void unreachable_blocking() {
    throw std::logic_error{
        "blocking channel ops are not available on a cooperative channel"};
  }

  [[nodiscard]] std::uint64_t now_or_zero() const {
    return sim_ != nullptr ? sim_->now() : 0;
  }

  [[nodiscard]] bool ring_full() const {
    return this->consumers_total_ > 0 &&
           head_ - min_cursor_ >= capacity_;
  }
  [[nodiscard]] std::size_t free_slots() const {
    return this->consumers_total_ == 0
               ? capacity_
               : capacity_ - static_cast<std::size_t>(head_ - min_cursor_);
  }

  /// Rescans the cursor of every active consumer. Called only when the
  /// lagging consumer advances or retires -- every other mutation leaves
  /// the minimum untouched, so the per-push O(#consumers) scan of the
  /// original design disappears from the hot path.
  void recompute_min_cursor() {
    std::uint64_t m = head_;
    for (std::size_t c = 0; c < cursors_.size(); ++c) {
      if (consumer_active_[c] != 0) m = std::min(m, cursors_[c]);
    }
    min_cursor_ = m;
  }

  /// Copies `k` elements into the ring at `head_`, split at the wrap point.
  /// `k` must not exceed the free space (or capacity when unconsumed).
  void raw_write(const T* src, std::size_t k) {
    const std::size_t pos = static_cast<std::size_t>(head_ % capacity_);
    const std::size_t first = std::min(k, capacity_ - pos);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(slots_.data() + pos, src, first * sizeof(T));
      std::memcpy(slots_.data(), src + first, (k - first) * sizeof(T));
    } else {
      std::copy_n(src, first, slots_.begin() + static_cast<std::ptrdiff_t>(pos));
      std::copy_n(src + first, k - first, slots_.begin());
    }
    if (sim_ != nullptr) {
      // A replay task re-pushing a recorded element carries the recording's
      // stamp instead of its own (zero-cost) clock.
      const std::uint64_t t =
          has_forced_stamp_ ? forced_stamp_ : sim_->now();
      for (std::size_t i = 0; i < k; ++i) {
        stamps_[static_cast<std::size_t>((head_ + i) % capacity_)] = t;
      }
      if constexpr (std::is_trivially_copyable_v<T>) {
        if (tap_ != nullptr) {
          const auto* bytes = reinterpret_cast<const std::byte*>(src);
          tap_->data.insert(tap_->data.end(), bytes, bytes + k * sizeof(T));
          tap_->stamps.insert(tap_->stamps.end(), k, t);
        }
      }
    }
    head_ += k;
    this->pushed_ += k;
  }

  /// Copies `k` buffered elements (which must be available) to `dst` and
  /// advances consumer `c`, maintaining the cached minimum cursor.
  void raw_read(std::size_t c, T* dst, std::size_t k) {
    const std::size_t pos = static_cast<std::size_t>(cursors_[c] % capacity_);
    const std::size_t first = std::min(k, capacity_ - pos);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(dst, slots_.data() + pos, first * sizeof(T));
      std::memcpy(dst + first, slots_.data(), (k - first) * sizeof(T));
    } else {
      std::copy_n(slots_.begin() + static_cast<std::ptrdiff_t>(pos), first,
                  dst);
      std::copy_n(slots_.begin(), k - first, dst + first);
    }
    const std::uint64_t old = cursors_[c];
    cursors_[c] += k;
    this->popped_[c] += k;
    if (old == min_cursor_) recompute_min_cursor();
  }

  /// Moves buffered data into a bulk pop waiter, advancing its progress and
  /// stamp high-water mark.
  void drain_into(BulkPopWaiter& w) {
    const auto c = static_cast<std::size_t>(w.consumer);
    const std::size_t avail = static_cast<std::size_t>(head_ - cursors_[c]);
    const std::size_t k = std::min(w.n - w.done, avail);
    if (k == 0) return;
    if (sim_ != nullptr) {
      for (std::size_t i = 0; i < k; ++i) {
        w.max_stamp = std::max(
            w.max_stamp,
            stamps_[static_cast<std::size_t>((cursors_[c] + i) % capacity_)]);
      }
    }
    raw_read(c, w.dst + w.done, k);
    w.done += k;
  }

  /// Completes parked operations until a fixpoint: a completed pop frees
  /// slots that may admit a parked push, whose data may feed another parked
  /// pop. Uses the raw transfer primitives directly, so there is no
  /// recursion; the loop terminates because every pass moves at least one
  /// element.
  void service_waiters() {
    if (parked_ == 0) return;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
        while (!pop_waiters_[c].empty() && cursors_[c] != head_) {
          PopWaiter w = pop_waiters_[c].front();
          pop_waiters_[c].pop_front();
          --parked_;
          const std::uint64_t stamp =
              sim_ != nullptr ? stamps_[cursors_[c] % capacity_] : 0;
          raw_read(c, w.out, 1);
          *w.status = ChanStatus::ok;
          exec_->make_ready(w.h, stamp);
          progress = true;
        }
        while (!bulk_pop_waiters_[c].empty() && cursors_[c] != head_) {
          BulkPopWaiter& w = bulk_pop_waiters_[c].front();
          drain_into(w);
          progress = true;
          if (w.done == w.n) {
            BulkPopWaiter fin = w;
            bulk_pop_waiters_[c].pop_front();
            --parked_;
            *fin.moved = fin.n;
            *fin.status = ChanStatus::ok;
            exec_->make_ready(fin.h, fin.max_stamp);
          } else {
            break;  // ring drained; wait for more data
          }
        }
      }
      while (!push_waiters_.empty() && !ring_full()) {
        PushWaiter w = push_waiters_.front();
        push_waiters_.pop_front();
        --parked_;
        raw_write(w.value, 1);
        *w.status = ChanStatus::ok;
        exec_->make_ready(w.h, now_or_zero());
        progress = true;
      }
      while (!bulk_push_waiters_.empty() && !ring_full()) {
        BulkPushWaiter& w = bulk_push_waiters_.front();
        const std::size_t k = std::min(w.n - w.done, free_slots());
        raw_write(w.src + w.done, k);
        w.done += k;
        progress = true;
        if (w.done == w.n) {
          BulkPushWaiter fin = w;
          bulk_push_waiters_.pop_front();
          --parked_;
          *fin.moved = fin.n;
          *fin.status = ChanStatus::ok;
          exec_->make_ready(fin.h, now_or_zero());
        } else {
          break;  // ring full; wait for space
        }
      }
    }
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  std::vector<std::uint64_t> stamps_;  // allocated only with SimHooks
  std::uint64_t head_ = 0;
  std::vector<std::uint64_t> cursors_;
  /// Cached minimum over active consumer cursors (== head_ when none).
  /// Only a pop by the lagging consumer or a consumer retiring can change
  /// it; both trigger recompute_min_cursor().
  std::uint64_t min_cursor_ = 0;
  std::vector<std::uint8_t> consumer_active_;
  std::vector<std::deque<PopWaiter>> pop_waiters_;
  std::vector<std::deque<BulkPopWaiter>> bulk_pop_waiters_;
  std::deque<PushWaiter> push_waiters_;
  std::deque<BulkPushWaiter> bulk_push_waiters_;
  std::size_t parked_ = 0;  ///< total waiters across all four queues
  std::uint64_t push_parks_ = 0;  ///< pushes that ever hit a full ring
  EdgeTap* tap_ = nullptr;        ///< recording target (sim runs only)
  std::uint64_t forced_stamp_ = 0;
  bool has_forced_stamp_ = false;
  Executor* exec_;
  SimHooks* sim_ = nullptr;
};

/// Thread-safe broadcast ring used by the thread-per-kernel runtime. This
/// deliberately reproduces the synchronization structure of AMD's x86sim
/// (one mutex + condition variables per channel), which is what Table 2 of
/// the paper compares cgsim against.
template <class T>
class ThreadedChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;

 public:
  ThreadedChannel(int consumers, int capacity)
      : TypedChannel<T>(consumers),
        capacity_(static_cast<std::size_t>(std::max(capacity, 1))),
        slots_(capacity_),
        cursors_(static_cast<std::size_t>(consumers), 0),
        consumer_active_(static_cast<std::size_t>(consumers), 1) {
    this->popped_.assign(static_cast<std::size_t>(consumers), 0);
    this->consumers_open_ = consumers;
  }

  bool blocking_push(const T& v) override {
    std::unique_lock lk{m_};
    not_full_.wait(lk, [&] {
      return this->consumers_open_ == 0 || this->consumers_total_ == 0 ||
             head_ - min_cursor() < capacity_;
    });
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      return false;
    }
    slots_[head_ % capacity_] = v;
    ++head_;
    ++this->pushed_;
    // One new element: with a single consumer endpoint only one waiter can
    // use it, so a single wake suffices. Broadcast channels must wake every
    // consumer -- each of them may read this element.
    if (this->consumers_total_ <= 1) {
      not_empty_.notify_one();
    } else {
      not_empty_.notify_all();
    }
    return true;
  }

  bool blocking_pop(int consumer, T& out) override {
    const auto c = static_cast<std::size_t>(consumer);
    std::unique_lock lk{m_};
    not_empty_.wait(lk,
                    [&] { return cursors_[c] != head_ || this->push_closed(); });
    if (cursors_[c] == head_) return false;  // closed and drained
    out = slots_[cursors_[c] % capacity_];
    ++cursors_[c];
    ++this->popped_[c];
    // A pop frees at most one ring slot (none unless this consumer was the
    // laggard), and only producers wait on not_full_: one wake suffices. A
    // woken producer that finds the ring still full simply re-checks its
    // predicate and sleeps again.
    not_full_.notify_one();
    return true;
  }

  ChanStatus try_push(const T&) override { unreachable_coop(); }
  ChanStatus try_pop(int, T&) override { unreachable_coop(); }
  void add_push_waiter(PushWaiter) override { unreachable_coop(); }
  void add_pop_waiter(PopWaiter) override { unreachable_coop(); }

  void producer_done() override {
    std::lock_guard lk{m_};
    // Close can release every blocked consumer at once: broadcast it.
    if (--this->producers_open_ == 0) not_empty_.notify_all();
  }
  void consumer_done(int consumer) override {
    std::lock_guard lk{m_};
    const auto c = static_cast<std::size_t>(consumer);
    if (consumer_active_[c] != 0) {
      consumer_active_[c] = 0;
      --this->consumers_open_;
      // Retiring the laggard can free many slots at once: broadcast.
      not_full_.notify_all();
    }
  }

 private:
  [[noreturn]] static void unreachable_coop() {
    throw std::logic_error{
        "cooperative channel ops are not available on a threaded channel"};
  }

  [[nodiscard]] std::uint64_t min_cursor() const {
    std::uint64_t m = head_;
    for (std::size_t c = 0; c < cursors_.size(); ++c) {
      if (consumer_active_[c] != 0) m = std::min(m, cursors_[c]);
    }
    return m;
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  std::uint64_t head_ = 0;
  std::vector<std::uint64_t> cursors_;
  std::vector<std::uint8_t> consumer_active_;
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// Lock-light bounded MPMC broadcast ring backing the cross-shard edges of
/// a coop_mt run. Kernels on different shards speak the same completion
/// protocol as CoopChannel, but the two sides run on different OS threads,
/// so the channel splits its state into two planes:
///
///   * Data plane (uncontended path): `head_` and the per-consumer cursors
///     are acquire/release atomics. A single-producer push and any pop are
///     entirely lock-free; multi-producer edges serialize pushes on
///     `push_m_` only. The bulk try_push_n/try_pop_n move a whole window
///     per cursor publication, amortizing the fences over the batch.
///   * Control plane: waiter parking, closure bookkeeping and waiter
///     servicing run under `m_`. The fast path touches it only when the
///     `parked_` count says a peer is actually parked.
///
/// Missed-wakeup freedom uses the classic store/load (Dekker) handshake:
/// a parking side publishes its intent (`parked_` increment), fences, then
/// re-checks the data plane; a publishing side stores its cursor, fences,
/// then checks `parked_`. Seq_cst fencing guarantees at least one side sees
/// the other, and `m_` serializes the slow paths that follow.
///
/// Lock ordering: `m_` may be acquired alone or before `push_m_`; `push_m_`
/// is never held while acquiring `m_` (fast-path pushes release it before
/// the wake check).
template <class T>
class ShardChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;
  using typename TypedChannel<T>::BulkPushWaiter;
  using typename TypedChannel<T>::BulkPopWaiter;

 public:
  ShardChannel(int consumers, int capacity, Executor* exec)
      : TypedChannel<T>(consumers),
        capacity_(static_cast<std::size_t>(std::max(capacity, 1))),
        slots_(capacity_),
        cursors_(static_cast<std::size_t>(consumers)),
        pop_waiters_(static_cast<std::size_t>(consumers)),
        bulk_pop_waiters_(static_cast<std::size_t>(consumers)),
        exec_(exec) {
    this->popped_.assign(static_cast<std::size_t>(consumers), 0);
    this->consumers_open_ = consumers;
    consumers_open_a_.store(consumers, std::memory_order_relaxed);
  }

  void set_producers(int n) override {
    ChannelBase::set_producers(n);
    producers_open_a_.store(n, std::memory_order_relaxed);
    multi_producer_ = n > 1;
  }

  ChanStatus try_push(const T& v) override {
    ChanStatus st{};
    try_push_n(&v, 1, st);
    return st;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    ChanStatus st{};
    try_pop_n(consumer, &out, 1, st);
    return st;
  }

  std::size_t try_push_n(const T* src, std::size_t n,
                         ChanStatus& st) override {
    if (this->consumers_total_ > 0 &&
        consumers_open_a_.load(std::memory_order_acquire) == 0) {
      st = ChanStatus::closed;
      return 0;
    }
    if (this->consumers_total_ == 0) {
      // No consumers: discard after updating statistics (matches the
      // cooperative ring's no-consumer semantics, minus the ring pass).
      OptLock plk{multi_producer_ ? &push_m_ : nullptr};
      this->pushed_ += n;
      st = ChanStatus::ok;
      return n;
    }
    const std::size_t k = push_some(src, n);
    if (k > 0) wake_if_parked();
    st = k == n ? ChanStatus::ok : ChanStatus::blocked;
    return k;
  }

  std::size_t try_pop_n(int consumer, T* dst, std::size_t n,
                        ChanStatus& st) override {
    auto& cur = cursors_[static_cast<std::size_t>(consumer)];
    const std::uint64_t pos = cur.pos.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t k = std::min(n, static_cast<std::size_t>(head - pos));
    if (k > 0) {
      read_ring(pos, dst, k);
      cur.pos.store(pos + k, std::memory_order_release);
      this->popped_[static_cast<std::size_t>(consumer)] += k;
      wake_if_parked();
    }
    if (k == n) {
      st = ChanStatus::ok;
    } else if (push_closed_mt() &&
               head_.load(std::memory_order_acquire) == pos + k) {
      // Close is published after the final push, so re-reading head after
      // the closed observation cannot miss in-flight data.
      st = ChanStatus::closed;
    } else {
      st = ChanStatus::blocked;
    }
    return k;
  }

  void add_push_waiter(PushWaiter w) override {
    BulkPushWaiter b{w.value, 1, 0, nullptr, w.status, w.h};
    add_push_waiter_common(b, &w);
  }

  void add_bulk_push_waiter(BulkPushWaiter w) override {
    add_push_waiter_common(w, nullptr);
  }

  void add_pop_waiter(PopWaiter w) override {
    std::unique_lock lk{m_};
    auto& cur = cursors_[static_cast<std::size_t>(w.consumer)];
    // Park-intent first, fence, then re-check: pairs with the producer's
    // publish-fence-check in wake_if_parked.
    parked_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t pos = cur.pos.load(std::memory_order_relaxed);
    if (head_.load(std::memory_order_acquire) != pos) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      read_ring(pos, w.out, 1);
      cur.pos.store(pos + 1, std::memory_order_release);
      ++this->popped_[static_cast<std::size_t>(w.consumer)];
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
      service_waiters_locked();
      return;
    }
    if (this->producers_open_ == 0 && this->producers_total_ > 0) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, 0);
      return;
    }
    pop_waiters_[static_cast<std::size_t>(w.consumer)].push_back(w);
  }

  void add_bulk_pop_waiter(BulkPopWaiter w) override {
    std::unique_lock lk{m_};
    parked_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    drain_into_locked(w);
    if (w.done == w.n) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
      service_waiters_locked();
      return;
    }
    auto& cur = cursors_[static_cast<std::size_t>(w.consumer)];
    if (this->producers_open_ == 0 && this->producers_total_ > 0 &&
        head_.load(std::memory_order_acquire) ==
            cur.pos.load(std::memory_order_relaxed)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      *w.moved = w.done;
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, 0);
      if (w.done > 0) service_waiters_locked();
      return;
    }
    bulk_pop_waiters_[static_cast<std::size_t>(w.consumer)].push_back(w);
    if (w.done > 0) service_waiters_locked();
  }

  bool blocking_push(const T&) override { unreachable_blocking(); }
  bool blocking_pop(int, T&) override { unreachable_blocking(); }

  void producer_done() override {
    std::unique_lock lk{m_};
    --this->producers_open_;
    producers_open_a_.store(this->producers_open_,
                            std::memory_order_release);
    if (this->producers_open_ != 0) return;
    // Flush completable data first, then end-of-stream the rest: a parked
    // pop that still has buffered elements must receive them, not closed.
    service_waiters_locked();
    for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
      parked_.fetch_sub(
          static_cast<std::size_t>(pop_waiters_[c].size() +
                                   bulk_pop_waiters_[c].size()),
          std::memory_order_relaxed);
      for (auto& w : pop_waiters_[c]) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      pop_waiters_[c].clear();
      for (auto& w : bulk_pop_waiters_[c]) {
        *w.moved = w.done;
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      bulk_pop_waiters_[c].clear();
    }
  }

  void consumer_done(int consumer) override {
    std::unique_lock lk{m_};
    auto& cur = cursors_[static_cast<std::size_t>(consumer)];
    if (cur.active.load(std::memory_order_relaxed) == 0) return;
    cur.active.store(0, std::memory_order_release);
    --this->consumers_open_;
    consumers_open_a_.store(this->consumers_open_,
                            std::memory_order_release);
    if (this->consumers_open_ == 0) {
      parked_.fetch_sub(scalar_push_waiters_.size() + push_waiters_.size(),
                        std::memory_order_relaxed);
      for (auto& w : scalar_push_waiters_) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      scalar_push_waiters_.clear();
      for (auto& w : push_waiters_) {
        if (w.moved != nullptr) *w.moved = w.done;
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      push_waiters_.clear();
    } else {
      service_waiters_locked();  // the retiring laggard may free slots
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t occupancy(int consumer) const {
    return static_cast<std::size_t>(
        head_.load(std::memory_order_acquire) -
        cursors_[static_cast<std::size_t>(consumer)].pos.load(
            std::memory_order_acquire));
  }

 private:
  /// Padded so two shards hammering adjacent cursors do not share a line.
  struct alignas(64) Cursor {
    std::atomic<std::uint64_t> pos{0};
    std::atomic<std::uint8_t> active{1};
  };

  class OptLock {
   public:
    explicit OptLock(std::mutex* m) : m_(m) {
      if (m_ != nullptr) m_->lock();
    }
    ~OptLock() {
      if (m_ != nullptr) m_->unlock();
    }
    OptLock(const OptLock&) = delete;
    OptLock& operator=(const OptLock&) = delete;

   private:
    std::mutex* m_;
  };

  [[noreturn]] static void unreachable_blocking() {
    throw std::logic_error{
        "blocking channel ops are not available on a shard channel"};
  }

  [[nodiscard]] bool push_closed_mt() const {
    return this->producers_total_ > 0 &&
           producers_open_a_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] std::uint64_t min_cursor(std::uint64_t head) const {
    std::uint64_t m = head;
    for (const auto& c : cursors_) {
      if (c.active.load(std::memory_order_acquire) != 0) {
        m = std::min(m, c.pos.load(std::memory_order_acquire));
      }
    }
    return m;
  }

  void write_ring(std::uint64_t head, const T* src, std::size_t k) {
    const std::size_t pos = static_cast<std::size_t>(head % capacity_);
    const std::size_t first = std::min(k, capacity_ - pos);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(slots_.data() + pos, src, first * sizeof(T));
      std::memcpy(slots_.data(), src + first, (k - first) * sizeof(T));
    } else {
      std::copy_n(src, first,
                  slots_.begin() + static_cast<std::ptrdiff_t>(pos));
      std::copy_n(src + first, k - first, slots_.begin());
    }
  }

  void read_ring(std::uint64_t cursor, T* dst, std::size_t k) {
    const std::size_t pos = static_cast<std::size_t>(cursor % capacity_);
    const std::size_t first = std::min(k, capacity_ - pos);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(dst, slots_.data() + pos, first * sizeof(T));
      std::memcpy(dst + first, slots_.data(), (k - first) * sizeof(T));
    } else {
      std::copy_n(slots_.begin() + static_cast<std::ptrdiff_t>(pos), first,
                  dst);
      std::copy_n(slots_.begin(), k - first, dst + first);
    }
  }

  /// Moves up to `n` elements from `src` into the ring, publishing `head_`
  /// once. Serializes on `push_m_` only for multi-producer edges; with one
  /// producer the single in-flight push (running or parked, never both)
  /// makes `head_` single-writer by construction.
  std::size_t push_some(const T* src, std::size_t n) {
    OptLock plk{multi_producer_ ? &push_m_ : nullptr};
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::size_t free =
        capacity_ - static_cast<std::size_t>(head - min_cursor(head));
    const std::size_t k = std::min(n, free);
    if (k > 0) {
      write_ring(head, src, k);
      head_.store(head + k, std::memory_order_release);
      this->pushed_ += k;
    }
    return k;
  }

  /// Publish-side half of the Dekker handshake: cursor stores above are
  /// release; the fence orders them against the parked check so a peer
  /// whose park-intent we miss is guaranteed to see our publication.
  void wake_if_parked() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) == 0) return;
    std::unique_lock lk{m_};
    service_waiters_locked();
  }

  /// Registration slow path shared by scalar and bulk pushes. `scalar` is
  /// non-null for a scalar waiter (its frame, not the temporary bulk view,
  /// must be parked).
  void add_push_waiter_common(BulkPushWaiter w, const PushWaiter* scalar) {
    std::unique_lock lk{m_};
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      if (w.moved != nullptr) *w.moved = w.done;
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, 0);
      return;
    }
    if (this->consumers_total_ == 0) {
      {
        OptLock plk{multi_producer_ ? &push_m_ : nullptr};
        this->pushed_ += w.n - w.done;
      }
      if (w.moved != nullptr) *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
      return;
    }
    parked_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::size_t moved_now = push_some(w.src + w.done, w.n - w.done);
    w.done += moved_now;
    if (w.done == w.n) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      if (w.moved != nullptr) *w.moved = w.n;
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
      service_waiters_locked();
      return;
    }
    if (scalar != nullptr) {
      scalar_push_waiters_.push_back(*scalar);
    } else {
      push_waiters_.push_back(w);
    }
    if (moved_now > 0) service_waiters_locked();
  }

  void drain_into_locked(BulkPopWaiter& w) {
    auto& cur = cursors_[static_cast<std::size_t>(w.consumer)];
    const std::uint64_t pos = cur.pos.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t k =
        std::min(w.n - w.done, static_cast<std::size_t>(head - pos));
    if (k == 0) return;
    read_ring(pos, w.dst + w.done, k);
    cur.pos.store(pos + k, std::memory_order_release);
    this->popped_[static_cast<std::size_t>(w.consumer)] += k;
    w.done += k;
  }

  /// Completes parked operations to a fixpoint, `m_` held. Mirrors the
  /// cooperative ring's servicing loop with atomic cursor publication; the
  /// woken coroutines are handed to the routing executor, which posts each
  /// to its home shard and unparks it if asleep.
  void service_waiters_locked() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
        auto& cur = cursors_[c];
        while (!pop_waiters_[c].empty()) {
          const std::uint64_t pos = cur.pos.load(std::memory_order_relaxed);
          if (head_.load(std::memory_order_acquire) == pos) break;
          PopWaiter w = pop_waiters_[c].front();
          pop_waiters_[c].pop_front();
          parked_.fetch_sub(1, std::memory_order_relaxed);
          read_ring(pos, w.out, 1);
          cur.pos.store(pos + 1, std::memory_order_release);
          ++this->popped_[c];
          *w.status = ChanStatus::ok;
          exec_->make_ready(w.h, 0);
          progress = true;
        }
        while (!bulk_pop_waiters_[c].empty()) {
          BulkPopWaiter& w = bulk_pop_waiters_[c].front();
          const std::size_t before = w.done;
          drain_into_locked(w);
          if (w.done != before) progress = true;
          if (w.done == w.n) {
            BulkPopWaiter fin = w;
            bulk_pop_waiters_[c].pop_front();
            parked_.fetch_sub(1, std::memory_order_relaxed);
            *fin.moved = fin.n;
            *fin.status = ChanStatus::ok;
            exec_->make_ready(fin.h, 0);
          } else {
            break;  // ring drained; wait for more data
          }
        }
      }
      while (!scalar_push_waiters_.empty()) {
        PushWaiter& w = scalar_push_waiters_.front();
        if (push_some(w.value, 1) == 0) break;
        PushWaiter fin = w;
        scalar_push_waiters_.pop_front();
        parked_.fetch_sub(1, std::memory_order_relaxed);
        *fin.status = ChanStatus::ok;
        exec_->make_ready(fin.h, 0);
        progress = true;
      }
      while (!push_waiters_.empty()) {
        BulkPushWaiter& w = push_waiters_.front();
        const std::size_t k = push_some(w.src + w.done, w.n - w.done);
        if (k > 0) progress = true;
        w.done += k;
        if (w.done == w.n) {
          BulkPushWaiter fin = w;
          push_waiters_.pop_front();
          parked_.fetch_sub(1, std::memory_order_relaxed);
          *fin.moved = fin.n;
          *fin.status = ChanStatus::ok;
          exec_->make_ready(fin.h, 0);
        } else {
          break;  // ring full; wait for space
        }
      }
    }
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::vector<Cursor> cursors_;
  std::atomic<int> producers_open_a_{0};
  std::atomic<int> consumers_open_a_{0};
  std::atomic<std::size_t> parked_{0};
  bool multi_producer_ = false;
  std::mutex m_;       ///< control plane: waiters + closure
  std::mutex push_m_;  ///< multi-producer data-plane serialization
  std::vector<std::deque<PopWaiter>> pop_waiters_;
  std::vector<std::deque<BulkPopWaiter>> bulk_pop_waiters_;
  std::deque<PushWaiter> scalar_push_waiters_;
  std::deque<BulkPushWaiter> push_waiters_;
  Executor* exec_;
};

/// Sticky single-value channel for AIE runtime parameters: a read returns
/// the most recent value without consuming it; a write overwrites. Reads
/// block only until the first value arrives. Bulk operations are rejected
/// (a runtime parameter is not a stream; see TypedChannel's defaults).
template <class T>
class RtpChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;

 public:
  RtpChannel(int consumers, ExecMode mode, Executor* exec)
      : TypedChannel<T>(consumers),
        mode_(mode),
        consumer_active_(static_cast<std::size_t>(std::max(consumers, 1)), 1),
        exec_(exec) {
    this->popped_.assign(static_cast<std::size_t>(std::max(consumers, 1)), 0);
    this->consumers_open_ = consumers;
  }

  ChanStatus try_push(const T& v) override {
    value_ = v;
    has_value_ = true;
    ++this->pushed_;
    for (auto& w : pop_waiters_) {
      *w.out = value_;
      ++this->popped_[static_cast<std::size_t>(w.consumer)];
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
    }
    pop_waiters_.clear();
    return ChanStatus::ok;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    if (!has_value_) {
      return this->push_closed() ? ChanStatus::closed : ChanStatus::blocked;
    }
    out = value_;
    ++this->popped_[static_cast<std::size_t>(consumer)];
    return ChanStatus::ok;
  }

  void add_push_waiter(PushWaiter w) override {
    // Pushes to an RTP never block.
    try_push(*w.value);
    *w.status = ChanStatus::ok;
    exec_->make_ready(w.h, 0);
  }
  void add_pop_waiter(PopWaiter w) override {
    if (has_value_ || this->push_closed()) {
      *w.status = try_pop(w.consumer, *w.out);
      exec_->make_ready(w.h, 0);
      return;
    }
    pop_waiters_.push_back(w);
  }

  bool blocking_push(const T& v) override {
    {
      std::lock_guard lk{m_};
      value_ = v;
      has_value_ = true;
      ++this->pushed_;
    }
    cv_.notify_all();
    return true;
  }

  bool blocking_pop(int consumer, T& out) override {
    std::unique_lock lk{m_};
    cv_.wait(lk, [&] { return has_value_ || this->push_closed(); });
    if (!has_value_) return false;
    out = value_;
    ++this->popped_[static_cast<std::size_t>(consumer)];
    return true;
  }

  void producer_done() override {
    if (mode_ == ExecMode::threaded) {
      std::lock_guard lk{m_};
      --this->producers_open_;
      cv_.notify_all();
      return;
    }
    if (--this->producers_open_ == 0 && !has_value_) {
      for (auto& w : pop_waiters_) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      pop_waiters_.clear();
    }
  }
  void consumer_done(int consumer) override {
    // Idempotent, like the ring channels: the runtime may report the same
    // endpoint done through several paths (rtp sink attachment + task
    // teardown), and a repeated decrement would drive consumers_open_
    // negative.
    const auto c =
        consumer >= 0 ? static_cast<std::size_t>(consumer) : std::size_t{0};
    if (c >= consumer_active_.size() || consumer_active_[c] == 0) return;
    consumer_active_[c] = 0;
    --this->consumers_open_;
  }

  void reset_for_rerun() override {
    this->reset_base_for_rerun();
    value_ = T{};
    has_value_ = false;
    pop_waiters_.clear();
    std::fill(consumer_active_.begin(), consumer_active_.end(), 1);
  }

  /// Final value, for runtime-parameter sinks.
  [[nodiscard]] bool latest(T& out) const {
    if (!has_value_) return false;
    out = value_;
    return true;
  }

 private:
  ExecMode mode_;
  T value_{};
  bool has_value_ = false;
  std::deque<PopWaiter> pop_waiters_;
  std::vector<std::uint8_t> consumer_active_;
  Executor* exec_;
  std::mutex m_;
  std::condition_variable cv_;
};

namespace detail {
template <class T>
ChannelBase* create_channel(ExecMode mode, int consumers, int capacity,
                            bool rtp, Executor* exec) {
  if (rtp) return new RtpChannel<T>(consumers, mode, exec);
  switch (mode) {
    case ExecMode::threaded:
      return new ThreadedChannel<T>(consumers, capacity);
    case ExecMode::coop:
    case ExecMode::sim:
    case ExecMode::coop_mt:
      // coop_mt intra-shard edges are single-threaded by construction; the
      // runtime requests ShardChannel explicitly for cross-shard edges.
      return new CoopChannel<T>(consumers, capacity, exec);
  }
  return nullptr;
}

template <class T>
ChannelBase* create_shard_channel(int consumers, int capacity,
                                  Executor* exec) {
  return new ShardChannel<T>(consumers, capacity, exec);
}

template <class T>
bool attach_tap_impl(ChannelBase* ch, EdgeTap* tap) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    auto* coop = dynamic_cast<CoopChannel<T>*>(ch);
    if (coop == nullptr) return false;  // RTP / threaded / shard backend
    coop->set_tap(tap);
    return true;
  } else {
    (void)ch;
    (void)tap;
    return false;  // elements cannot be stored as raw bytes
  }
}

/// Suspends until the simulation clock of the awaiting task reaches `when`
/// (the executor advances a task's clock to at least `not_before` on wake).
struct WaitUntil {
  Executor* exec;
  std::uint64_t when;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    exec->make_ready(h, when);
  }
  void await_resume() const noexcept {}
};

/// Push of one replayed element, bypassing the port layer so no access
/// cost is charged (the original producer already paid it in the recorded
/// stamps). Counts a park when the ring is full -- the signal that the
/// replayed timeline diverged from the recording.
template <class T>
struct ReplayPush {
  CoopChannel<T>* ch;
  const T* value;
  std::uint64_t* blocked;
  ChanStatus status = ChanStatus::ok;

  [[nodiscard]] bool await_ready() {
    status = ch->try_push(*value);
    return status != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    ++*blocked;
    ch->add_push_waiter({value, &status, h});
  }
  [[nodiscard]] ChanStatus await_resume() const { return status; }
};

/// Stands in for every original producer of a recorded edge: re-pushes the
/// recording element by element, pacing itself to each element's stamp.
/// The task charges no instrumented ops and no port costs, so its clock
/// lands exactly on the stamps and a consumer's wake times match the
/// baseline run bit for bit.
template <class T>
KernelTask replay_source(CoopChannel<T>* ch, const EdgeTap* tap,
                         Executor* exec, std::uint64_t* blocked) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t n = tap->count();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t stamp = tap->stamps[i];
    co_await WaitUntil{exec, stamp};
    T v;
    std::memcpy(&v, tap->data.data() + i * sizeof(T), sizeof(T));
    ch->set_forced_stamp(stamp);
    const ChanStatus st = co_await ReplayPush<T>{ch, &v, blocked};
    ch->clear_forced_stamp();
    if (st != ChanStatus::ok) break;  // all consumers retired early
  }
}

template <class T>
KernelTask make_replay_impl(ChannelBase* ch, const EdgeTap* tap,
                            Executor* exec, std::uint64_t* blocked) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    // The caller attached a tap to this channel earlier, which proves it is
    // the cooperative ring backend.
    return replay_source<T>(static_cast<CoopChannel<T>*>(ch), tap, exec,
                            blocked);
  } else {
    throw std::logic_error{
        "replay requested for a non-trivially-copyable element type"};
  }
}

template <class T>
inline constexpr ChannelVTable channel_vtable_v{
    &create_channel<T>,      &create_shard_channel<T>,
    detail::pretty_type_name<T>(), sizeof(T),
    alignof(T),              &attach_tap_impl<T>,
    &make_replay_impl<T>};
}  // namespace detail

template <class T>
const ChannelVTable& channel_vtable() {
  return detail::channel_vtable_v<T>;
}

}  // namespace cgsim

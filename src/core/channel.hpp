// cgsim -- MPMC broadcast channels connecting kernels (paper Section 3.6).
//
// Semantics: fixed capacity; every consumer endpoint receives a complete
// copy of all data written to the channel (broadcast); data from a single
// producer stays ordered, data from multiple producers may interleave.
//
// The cooperative backends use a *completion-based* protocol: a kernel that
// cannot make progress registers a waiter record pointing into its awaiter
// frame, and the channel itself performs the transfer the moment it becomes
// possible, then hands the coroutine back to the executor. This makes every
// wake-up productive (no spurious retries), which is where cgsim's
// near-zero synchronization overhead (paper Section 5.2) comes from.
//
// Three backends share one interface:
//   * CoopChannel     -- completion-based, single-threaded; also serves the
//                        cycle-approximate backend via per-item virtual-time
//                        stamps (SimHooks).
//   * ThreadedChannel -- mutex/condition-variable blocking ops for the
//                        thread-per-kernel x86sim-style runtime.
//   * RtpChannel      -- sticky single-value channel backing AIE runtime
//                        parameters (paper Section 3.7).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "port_config.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Virtual-time hooks for the cycle-approximate backend. The engine knows
/// which kernel is currently executing and what its tile clock reads.
class SimHooks {
 public:
  virtual ~SimHooks() = default;
  /// Virtual time (cycles) of the currently running kernel.
  [[nodiscard]] virtual std::uint64_t now() const = 0;
  /// Charges stream/buffer access cost for one element of `elem_bytes`
  /// moved through the port bound to `ch` with the given settings to the
  /// currently running kernel.
  virtual void charge_port_access(const PortSettings& s,
                                  std::size_t elem_bytes, bool is_read,
                                  const ChannelBase* ch) = 0;
};

/// Outcome of a non-blocking channel operation.
enum class ChanStatus : std::uint8_t {
  ok,       ///< transferred one element
  blocked,  ///< would block (full / empty); caller should suspend
  closed,   ///< permanently unusable in this direction
};

/// Type-erased channel base: lifecycle, closure bookkeeping and statistics.
class ChannelBase {
 public:
  explicit ChannelBase(int consumers) : consumers_total_(consumers) {}
  virtual ~ChannelBase() = default;
  ChannelBase(const ChannelBase&) = delete;
  ChannelBase& operator=(const ChannelBase&) = delete;

  void set_producers(int n) {
    producers_open_ = n;
    producers_total_ = n;
  }
  void set_debug_name(std::string name) { debug_name_ = std::move(name); }
  [[nodiscard]] const std::string& debug_name() const { return debug_name_; }

  /// One producer endpoint finished; closing the last one releases blocked
  /// consumers with ChanStatus::closed once the buffer drains.
  virtual void producer_done() = 0;
  /// One consumer endpoint finished; its cursor stops constraining ring
  /// reuse, and closing the last one releases blocked producers.
  virtual void consumer_done(int consumer) = 0;

  [[nodiscard]] int consumers() const { return consumers_total_; }
  [[nodiscard]] int producers_open() const { return producers_open_; }
  [[nodiscard]] int consumers_open() const { return consumers_open_; }
  [[nodiscard]] bool push_closed() const {
    return producers_total_ > 0 && producers_open_ == 0;
  }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t popped(int consumer) const {
    return popped_.empty() ? 0 : popped_[static_cast<std::size_t>(consumer)];
  }

  /// Attaches virtual-time hooks (cycle-approximate backend only).
  virtual void attach_sim_hooks(SimHooks*) {}

 protected:
  int consumers_total_ = 0;
  int producers_total_ = 0;
  int producers_open_ = 0;
  int consumers_open_ = 0;
  std::uint64_t pushed_ = 0;
  std::vector<std::uint64_t> popped_;
  std::string debug_name_;
};

/// Typed channel operations. `consumer` identifies the broadcast endpoint.
template <class T>
class TypedChannel : public ChannelBase {
 public:
  using ChannelBase::ChannelBase;

  /// Pending push registered by a suspending producer. The channel performs
  /// `*value -> ring` itself when space appears, sets `*status`, and hands
  /// `h` to the executor. All pointers live in the awaiter frame, which is
  /// stable while the coroutine is suspended.
  struct PushWaiter {
    const T* value;
    ChanStatus* status;
    std::coroutine_handle<> h;
  };
  /// Pending pop registered by a suspending consumer.
  struct PopWaiter {
    T* out;
    ChanStatus* status;
    std::coroutine_handle<> h;
    int consumer;
  };

  // --- cooperative (non-blocking fast path + completion registration) ---
  virtual ChanStatus try_push(const T& v) = 0;
  virtual ChanStatus try_pop(int consumer, T& out) = 0;
  /// Registers `w`; may complete it synchronously (executor notified) when
  /// the operation is already possible or permanently impossible.
  virtual void add_push_waiter(PushWaiter w) = 0;
  virtual void add_pop_waiter(PopWaiter w) = 0;

  // --- threaded (blocking; return false when closed) ---
  virtual bool blocking_push(const T& v) = 0;
  virtual bool blocking_pop(int consumer, T& out) = 0;
};

/// Cooperative broadcast ring buffer. Single-threaded by construction; no
/// locks, no atomics.
template <class T>
class CoopChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;

 public:
  CoopChannel(int consumers, int capacity, Executor* exec)
      : TypedChannel<T>(consumers),
        capacity_(static_cast<std::size_t>(std::max(capacity, 1))),
        slots_(capacity_),
        stamps_(capacity_, 0),
        cursors_(static_cast<std::size_t>(consumers), 0),
        consumer_active_(static_cast<std::size_t>(consumers), 1),
        pop_waiters_(static_cast<std::size_t>(consumers)),
        exec_(exec) {
    this->popped_.assign(static_cast<std::size_t>(consumers), 0);
    this->consumers_open_ = consumers;
  }

  ChanStatus try_push(const T& v) override {
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      return ChanStatus::closed;  // nobody will ever read again
    }
    if (this->consumers_total_ > 0 && head_ - min_cursor() >= capacity_) {
      return ChanStatus::blocked;
    }
    do_push(v);
    return ChanStatus::ok;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    const auto c = static_cast<std::size_t>(consumer);
    if (cursors_[c] == head_) {
      return this->push_closed() ? ChanStatus::closed : ChanStatus::blocked;
    }
    if (sim_ != nullptr && stamps_[cursors_[c] % capacity_] > sim_->now()) {
      // The element exists but has not yet arrived in virtual time; the
      // caller suspends and the completion path schedules the wake at the
      // element's stamp.
      return ChanStatus::blocked;
    }
    do_pop(c, out);
    return ChanStatus::ok;
  }

  void add_push_waiter(PushWaiter w) override {
    // Completion may already be possible (or impossible); check-then-park.
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    if (this->consumers_total_ == 0 || head_ - min_cursor() < capacity_) {
      do_push(*w.value);
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    push_waiters_.push_back(w);
  }

  void add_pop_waiter(PopWaiter w) override {
    const auto c = static_cast<std::size_t>(w.consumer);
    if (cursors_[c] != head_) {
      const std::uint64_t stamp = stamps_[cursors_[c] % capacity_];
      do_pop(c, *w.out);
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, stamp);
      return;
    }
    if (this->push_closed()) {
      *w.status = ChanStatus::closed;
      exec_->make_ready(w.h, now_or_zero());
      return;
    }
    pop_waiters_[c].push_back(w);
  }

  bool blocking_push(const T&) override { unreachable_blocking(); }
  bool blocking_pop(int, T&) override { unreachable_blocking(); }

  void producer_done() override {
    if (--this->producers_open_ == 0) {
      // Consumers that already drained everything observe end-of-stream.
      for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
        if (cursors_[c] != head_) continue;  // still has data to read
        for (auto& w : pop_waiters_[c]) {
          *w.status = ChanStatus::closed;
          exec_->make_ready(w.h, now_or_zero());
        }
        pop_waiters_[c].clear();
      }
    }
  }

  void consumer_done(int consumer) override {
    const auto c = static_cast<std::size_t>(consumer);
    if (consumer_active_[c] == 0) return;
    consumer_active_[c] = 0;
    --this->consumers_open_;
    if (this->consumers_open_ == 0) {
      for (auto& w : push_waiters_) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, now_or_zero());
      }
      push_waiters_.clear();
    } else {
      service_push_waiters();  // this cursor no longer limits ring reuse
    }
  }

  void attach_sim_hooks(SimHooks* hooks) override { sim_ = hooks; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t occupancy(int consumer) const {
    return static_cast<std::size_t>(
        head_ - cursors_[static_cast<std::size_t>(consumer)]);
  }

 private:
  [[noreturn]] static void unreachable_blocking() {
    throw std::logic_error{
        "blocking channel ops are not available on a cooperative channel"};
  }

  [[nodiscard]] std::uint64_t now_or_zero() const {
    return sim_ != nullptr ? sim_->now() : 0;
  }

  [[nodiscard]] std::uint64_t min_cursor() const {
    std::uint64_t m = head_;
    for (std::size_t c = 0; c < cursors_.size(); ++c) {
      if (consumer_active_[c] != 0) m = std::min(m, cursors_[c]);
    }
    return m;
  }

  void do_push(const T& v) {
    slots_[head_ % capacity_] = v;
    stamps_[head_ % capacity_] = now_or_zero();
    ++head_;
    ++this->pushed_;
    service_pop_waiters();
  }

  void do_pop(std::size_t c, T& out) {
    out = slots_[cursors_[c] % capacity_];
    ++cursors_[c];
    ++this->popped_[c];
    service_push_waiters();
  }

  // Completes parked pops for which data is now available. Completion of a
  // pop frees slots, which may complete parked pushes, which in turn feed
  // parked pops; the mutual recursion terminates because every step moves
  // at least one element.
  void service_pop_waiters() {
    for (std::size_t c = 0; c < pop_waiters_.size(); ++c) {
      while (!pop_waiters_[c].empty() && cursors_[c] != head_) {
        PopWaiter w = pop_waiters_[c].front();
        pop_waiters_[c].pop_front();
        const std::uint64_t stamp = stamps_[cursors_[c] % capacity_];
        do_pop(c, *w.out);
        *w.status = ChanStatus::ok;
        exec_->make_ready(w.h, stamp);
      }
    }
  }

  void service_push_waiters() {
    while (!push_waiters_.empty() &&
           (this->consumers_total_ == 0 || head_ - min_cursor() < capacity_)) {
      PushWaiter w = push_waiters_.front();
      push_waiters_.pop_front();
      do_push(*w.value);
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, now_or_zero());
    }
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  std::vector<std::uint64_t> stamps_;  // virtual availability times (sim)
  std::uint64_t head_ = 0;
  std::vector<std::uint64_t> cursors_;
  std::vector<std::uint8_t> consumer_active_;
  std::vector<std::deque<PopWaiter>> pop_waiters_;
  std::deque<PushWaiter> push_waiters_;
  Executor* exec_;
  SimHooks* sim_ = nullptr;
};

/// Thread-safe broadcast ring used by the thread-per-kernel runtime. This
/// deliberately reproduces the synchronization structure of AMD's x86sim
/// (one mutex + condition variables per channel), which is what Table 2 of
/// the paper compares cgsim against.
template <class T>
class ThreadedChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;

 public:
  ThreadedChannel(int consumers, int capacity)
      : TypedChannel<T>(consumers),
        capacity_(static_cast<std::size_t>(std::max(capacity, 1))),
        slots_(capacity_),
        cursors_(static_cast<std::size_t>(consumers), 0),
        consumer_active_(static_cast<std::size_t>(consumers), 1) {
    this->popped_.assign(static_cast<std::size_t>(consumers), 0);
    this->consumers_open_ = consumers;
  }

  bool blocking_push(const T& v) override {
    std::unique_lock lk{m_};
    not_full_.wait(lk, [&] {
      return this->consumers_open_ == 0 || this->consumers_total_ == 0 ||
             head_ - min_cursor() < capacity_;
    });
    if (this->consumers_total_ > 0 && this->consumers_open_ == 0) {
      return false;
    }
    slots_[head_ % capacity_] = v;
    ++head_;
    ++this->pushed_;
    not_empty_.notify_all();
    return true;
  }

  bool blocking_pop(int consumer, T& out) override {
    const auto c = static_cast<std::size_t>(consumer);
    std::unique_lock lk{m_};
    not_empty_.wait(lk,
                    [&] { return cursors_[c] != head_ || this->push_closed(); });
    if (cursors_[c] == head_) return false;  // closed and drained
    out = slots_[cursors_[c] % capacity_];
    ++cursors_[c];
    ++this->popped_[c];
    not_full_.notify_all();
    return true;
  }

  ChanStatus try_push(const T&) override { unreachable_coop(); }
  ChanStatus try_pop(int, T&) override { unreachable_coop(); }
  void add_push_waiter(PushWaiter) override { unreachable_coop(); }
  void add_pop_waiter(PopWaiter) override { unreachable_coop(); }

  void producer_done() override {
    std::lock_guard lk{m_};
    if (--this->producers_open_ == 0) not_empty_.notify_all();
  }
  void consumer_done(int consumer) override {
    std::lock_guard lk{m_};
    const auto c = static_cast<std::size_t>(consumer);
    if (consumer_active_[c] != 0) {
      consumer_active_[c] = 0;
      --this->consumers_open_;
      not_full_.notify_all();
    }
  }

 private:
  [[noreturn]] static void unreachable_coop() {
    throw std::logic_error{
        "cooperative channel ops are not available on a threaded channel"};
  }

  [[nodiscard]] std::uint64_t min_cursor() const {
    std::uint64_t m = head_;
    for (std::size_t c = 0; c < cursors_.size(); ++c) {
      if (consumer_active_[c] != 0) m = std::min(m, cursors_[c]);
    }
    return m;
  }

  std::size_t capacity_;
  std::vector<T> slots_;
  std::uint64_t head_ = 0;
  std::vector<std::uint64_t> cursors_;
  std::vector<std::uint8_t> consumer_active_;
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// Sticky single-value channel for AIE runtime parameters: a read returns
/// the most recent value without consuming it; a write overwrites. Reads
/// block only until the first value arrives.
template <class T>
class RtpChannel final : public TypedChannel<T> {
  using typename TypedChannel<T>::PushWaiter;
  using typename TypedChannel<T>::PopWaiter;

 public:
  RtpChannel(int consumers, ExecMode mode, Executor* exec)
      : TypedChannel<T>(consumers), mode_(mode), exec_(exec) {
    this->popped_.assign(static_cast<std::size_t>(std::max(consumers, 1)), 0);
    this->consumers_open_ = consumers;
  }

  ChanStatus try_push(const T& v) override {
    value_ = v;
    has_value_ = true;
    ++this->pushed_;
    for (auto& w : pop_waiters_) {
      *w.out = value_;
      ++this->popped_[static_cast<std::size_t>(w.consumer)];
      *w.status = ChanStatus::ok;
      exec_->make_ready(w.h, 0);
    }
    pop_waiters_.clear();
    return ChanStatus::ok;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    if (!has_value_) {
      return this->push_closed() ? ChanStatus::closed : ChanStatus::blocked;
    }
    out = value_;
    ++this->popped_[static_cast<std::size_t>(consumer)];
    return ChanStatus::ok;
  }

  void add_push_waiter(PushWaiter w) override {
    // Pushes to an RTP never block.
    try_push(*w.value);
    *w.status = ChanStatus::ok;
    exec_->make_ready(w.h, 0);
  }
  void add_pop_waiter(PopWaiter w) override {
    if (has_value_ || this->push_closed()) {
      *w.status = try_pop(w.consumer, *w.out);
      exec_->make_ready(w.h, 0);
      return;
    }
    pop_waiters_.push_back(w);
  }

  bool blocking_push(const T& v) override {
    {
      std::lock_guard lk{m_};
      value_ = v;
      has_value_ = true;
      ++this->pushed_;
    }
    cv_.notify_all();
    return true;
  }

  bool blocking_pop(int consumer, T& out) override {
    std::unique_lock lk{m_};
    cv_.wait(lk, [&] { return has_value_ || this->push_closed(); });
    if (!has_value_) return false;
    out = value_;
    ++this->popped_[static_cast<std::size_t>(consumer)];
    return true;
  }

  void producer_done() override {
    if (mode_ == ExecMode::threaded) {
      std::lock_guard lk{m_};
      --this->producers_open_;
      cv_.notify_all();
      return;
    }
    if (--this->producers_open_ == 0 && !has_value_) {
      for (auto& w : pop_waiters_) {
        *w.status = ChanStatus::closed;
        exec_->make_ready(w.h, 0);
      }
      pop_waiters_.clear();
    }
  }
  void consumer_done(int) override { --this->consumers_open_; }

  /// Final value, for runtime-parameter sinks.
  [[nodiscard]] bool latest(T& out) const {
    if (!has_value_) return false;
    out = value_;
    return true;
  }

 private:
  ExecMode mode_;
  T value_{};
  bool has_value_ = false;
  std::deque<PopWaiter> pop_waiters_;
  Executor* exec_;
  std::mutex m_;
  std::condition_variable cv_;
};

namespace detail {
template <class T>
ChannelBase* create_channel(ExecMode mode, int consumers, int capacity,
                            bool rtp, Executor* exec) {
  if (rtp) return new RtpChannel<T>(consumers, mode, exec);
  switch (mode) {
    case ExecMode::threaded:
      return new ThreadedChannel<T>(consumers, capacity);
    case ExecMode::coop:
    case ExecMode::sim:
      return new CoopChannel<T>(consumers, capacity, exec);
  }
  return nullptr;
}

template <class T>
inline constexpr ChannelVTable channel_vtable_v{
    &create_channel<T>, detail::pretty_type_name<T>(), sizeof(T), alignof(T)};
}  // namespace detail

template <class T>
const ChannelVTable& channel_vtable() {
  return detail::channel_vtable_v<T>;
}

}  // namespace cgsim

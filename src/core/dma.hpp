// cgsim -- DMA descriptor transforms for data sources and sinks.
//
// The paper's Section 6 lists "advanced DMA operations such as
// corner-turning" among the hardware capabilities cgsim does not yet
// expose; this extension implements them. On Versal hardware the tile DMA
// can reorder data while moving it (multi-dimensional address generation);
// in cgsim a DmaTransform is applied element-wise by the data source or
// sink coroutine, so a prototype observes exactly the layout the DMA
// descriptor would produce.
#pragma once

#include <array>
#include <cstddef>
#include <functional>

namespace cgsim::dma {

/// Element-wise block transform applied by a source (before injecting into
/// the graph) or a sink (after draining from it).
template <class T>
using Transform = std::function<T(const T&)>;

namespace detail {
template <class B>
concept ArrayBlock = requires(B b) {
  b.size();
  b[0];
  typename B::value_type;
};
}  // namespace detail

/// Corner-turning DMA descriptor: interprets each block as a Rows x Cols
/// row-major matrix and transposes it during the transfer (UG1079
/// "multi-dimensional tiling" / corner turn).
template <std::size_t Rows, std::size_t Cols>
struct CornerTurn {
  template <detail::ArrayBlock B>
  [[nodiscard]] B operator()(const B& in) const {
    static_assert(Rows * Cols > 0);
    B out{};
    for (std::size_t r = 0; r < Rows; ++r) {
      for (std::size_t c = 0; c < Cols; ++c) {
        out[c * Rows + r] = in[r * Cols + c];
      }
    }
    return out;
  }
};

/// Strided gather: out[i] = in[(i * Stride) % N] -- the DMA's 1D stride
/// address generation.
template <std::size_t Stride>
struct Stride1D {
  template <detail::ArrayBlock B>
  [[nodiscard]] B operator()(const B& in) const {
    B out{};
    const std::size_t n = in.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = in[(i * Stride) % n];
    }
    return out;
  }
};

}  // namespace cgsim::dma

// cgsim -- structural validation of flattened compute graphs.
//
// The constexpr builder produces well-formed graphs by construction; the
// runtime (Graphtoy-style) builder and any hand-assembled GraphView do
// not. validate_graph() checks the invariants every consumer of a
// GraphView (runtime, simulators, extractor) relies on and reports every
// violation found, making bad graphs fail loudly before they deadlock or
// corrupt a run.
#pragma once

#include <string>
#include <vector>

#include "graph_view.hpp"
#include "port_config.hpp"

namespace cgsim {

/// Returns a human-readable message per violated invariant (empty = valid).
[[nodiscard]] inline std::vector<std::string> validate_graph(
    const GraphView& g) {
  std::vector<std::string> issues;
  auto issue = [&](std::string msg) { issues.push_back(std::move(msg)); };

  const auto n_edges = static_cast<int>(g.edges.size());
  const auto n_ports = static_cast<int>(g.ports.size());

  if (g.kernels.empty()) issue("graph has no kernels");

  // Kernel port ranges tile the port array without overlap.
  std::vector<int> port_owner(g.ports.size(), -1);
  for (std::size_t k = 0; k < g.kernels.size(); ++k) {
    const FlatKernel& fk = g.kernels[k];
    if (fk.thunk == nullptr) {
      issue("kernel '" + std::string{fk.name} + "' has no runtime thunk");
    }
    if (fk.first_port < 0 || fk.nports < 0 ||
        fk.first_port + fk.nports > n_ports) {
      issue("kernel '" + std::string{fk.name} + "' port range out of bounds");
      continue;
    }
    for (int p = fk.first_port; p < fk.first_port + fk.nports; ++p) {
      if (port_owner[static_cast<std::size_t>(p)] != -1) {
        issue("port " + std::to_string(p) + " owned by two kernels");
      }
      port_owner[static_cast<std::size_t>(p)] = static_cast<int>(k);
    }
  }
  for (std::size_t p = 0; p < port_owner.size(); ++p) {
    if (port_owner[p] == -1) {
      issue("port " + std::to_string(p) + " not owned by any kernel");
    }
  }

  // Ports reference valid edges; endpoints are dense per edge.
  std::vector<int> consumers(g.edges.size(), 0);
  std::vector<int> producers(g.edges.size(), 0);
  std::vector<std::vector<int>> seen_endpoints(g.edges.size());
  auto count_consumer = [&](int edge, int endpoint, const char* what) {
    const auto e = static_cast<std::size_t>(edge);
    if (endpoint < 0) {
      issue(std::string{what} + " missing broadcast endpoint");
      return;
    }
    for (int s : seen_endpoints[e]) {
      if (s == endpoint) {
        issue(std::string{what} + " duplicates endpoint " +
              std::to_string(endpoint));
      }
    }
    seen_endpoints[e].push_back(endpoint);
    ++consumers[e];
  };
  for (std::size_t p = 0; p < g.ports.size(); ++p) {
    const FlatPort& fp = g.ports[p];
    if (fp.edge < 0 || fp.edge >= n_edges) {
      issue("port " + std::to_string(p) + " references invalid edge");
      continue;
    }
    if (fp.is_read) {
      count_consumer(fp.edge, fp.endpoint, "read port");
    } else {
      ++producers[static_cast<std::size_t>(fp.edge)];
      if (fp.endpoint != -1) {
        issue("write port " + std::to_string(p) +
              " carries a consumer endpoint");
      }
    }
  }
  for (const FlatGlobal& in : g.inputs) {
    if (in.edge < 0 || in.edge >= n_edges) {
      issue("global input references invalid edge");
      continue;
    }
    ++producers[static_cast<std::size_t>(in.edge)];
    if (g.edges[static_cast<std::size_t>(in.edge)].type != in.type) {
      issue("global input type disagrees with its edge");
    }
  }
  for (const FlatGlobal& out : g.outputs) {
    if (out.edge < 0 || out.edge >= n_edges) {
      issue("global output references invalid edge");
      continue;
    }
    count_consumer(out.edge, out.endpoint, "global output");
    if (g.edges[static_cast<std::size_t>(out.edge)].type != out.type) {
      issue("global output type disagrees with its edge");
    }
  }

  // Edge bookkeeping matches the endpoint census.
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const FlatEdge& fe = g.edges[e];
    if (fe.vtable == nullptr) {
      issue("edge " + std::to_string(e) + " has no channel vtable");
    }
    if (fe.capacity <= 0) {
      issue("edge " + std::to_string(e) + " has non-positive capacity");
    }
    if (fe.n_consumers != consumers[e]) {
      issue("edge " + std::to_string(e) + " consumer count mismatch (" +
            std::to_string(fe.n_consumers) + " recorded, " +
            std::to_string(consumers[e]) + " actual)");
    }
    if (fe.n_producers != producers[e]) {
      issue("edge " + std::to_string(e) + " producer count mismatch");
    }
    if (fe.n_producers == 0 && fe.n_consumers > 0) {
      issue("edge " + std::to_string(e) + " has readers but no writer");
    }
    // Endpoint density: 0..n_consumers-1 each exactly once.
    for (int exp = 0; exp < fe.n_consumers; ++exp) {
      bool found = false;
      for (int s : seen_endpoints[e]) found |= s == exp;
      if (!found) {
        issue("edge " + std::to_string(e) + " missing endpoint " +
              std::to_string(exp));
      }
    }
  }
  return issues;
}

}  // namespace cgsim

// cgsim -- kernel-facing streaming I/O port types (paper Sections 3.3, 3.6).
//
// KernelReadPort / KernelWritePort appear in COMPUTE_KERNEL signatures.
// Behavioural settings (beat width, runtime-parameter flag, buffer mode)
// are non-type template parameters; they take part in connection merging at
// graph-construction (compile) time. At run time a port is bound to one
// broadcast-channel endpoint and accessed with `co_await port.get()` /
// `co_await port.put(v)`.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>

#include "channel.hpp"
#include "port_config.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Runtime wiring of one kernel port; filled in by the RuntimeContext when
/// a serialized graph is instantiated (paper Section 3.6).
struct PortBinding {
  ChannelBase* channel = nullptr;
  int consumer = -1;  ///< broadcast endpoint for read ports
  ExecMode mode = ExecMode::coop;
  SimHooks* sim = nullptr;
};

namespace detail {

template <class T>
struct [[nodiscard]] ReadAwaiter {
  TypedChannel<T>* ch;
  int consumer;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  T value{};
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (mode == ExecMode::threaded) {
      st = ch->blocking_pop(consumer, value) ? ChanStatus::ok
                                             : ChanStatus::closed;
      return true;
    }
    st = ch->try_pop(consumer, value);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    ch->add_pop_waiter({&value, &st, h, consumer});
  }
  T await_resume() {
    if (st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      sim->charge_port_access(settings, sizeof(T), /*is_read=*/true, ch);
    }
    return std::move(value);
  }
};

template <class T>
struct [[nodiscard]] WriteAwaiter {
  TypedChannel<T>* ch;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  T value;
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (mode == ExecMode::threaded) {
      st = ch->blocking_push(value) ? ChanStatus::ok : ChanStatus::closed;
      return true;
    }
    st = ch->try_push(value);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    ch->add_push_waiter({&value, &st, h});
  }
  void await_resume() {
    if (st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      sim->charge_port_access(settings, sizeof(T), /*is_read=*/false, ch);
    }
  }
};

}  // namespace detail

/// Streaming input of a compute kernel.
///
/// `S` carries behaviour-affecting settings (paper Section 3.4): e.g.
/// `KernelReadPort<float, PortSettings{.rtp = true}>` declares an AIE
/// runtime parameter, `KernelReadPort<int, PortSettings{.beat_bits = 64}>`
/// pins the AXI beat width.
template <class T, PortSettings S = PortSettings{}>
class KernelReadPort {
 public:
  using value_type = T;
  static constexpr PortSettings settings = S;
  static constexpr bool is_read_port = true;

  KernelReadPort() = default;
  explicit KernelReadPort(const PortBinding& b)
      : ch_(static_cast<TypedChannel<T>*>(b.channel)),
        consumer_(b.consumer),
        mode_(b.mode),
        sim_(b.sim) {}

  /// Awaitable that yields the next stream element; raises StreamClosed
  /// (terminating the kernel) once the stream is exhausted for good.
  [[nodiscard]] detail::ReadAwaiter<T> get() const {
    return {ch_, consumer_, mode_, sim_, S};
  }

  [[nodiscard]] TypedChannel<T>* channel() const { return ch_; }
  [[nodiscard]] int consumer() const { return consumer_; }

 private:
  TypedChannel<T>* ch_ = nullptr;
  int consumer_ = -1;
  ExecMode mode_ = ExecMode::coop;
  SimHooks* sim_ = nullptr;
};

/// Streaming output of a compute kernel.
template <class T, PortSettings S = PortSettings{}>
class KernelWritePort {
 public:
  using value_type = T;
  static constexpr PortSettings settings = S;
  static constexpr bool is_read_port = false;

  KernelWritePort() = default;
  explicit KernelWritePort(const PortBinding& b)
      : ch_(static_cast<TypedChannel<T>*>(b.channel)),
        mode_(b.mode),
        sim_(b.sim) {}

  /// Awaitable that writes one element, suspending while the channel is
  /// full; raises StreamClosed when every downstream consumer has finished.
  [[nodiscard]] detail::WriteAwaiter<T> put(T v) const {
    return {ch_, mode_, sim_, S, std::move(v)};
  }

  [[nodiscard]] TypedChannel<T>* channel() const { return ch_; }

 private:
  TypedChannel<T>* ch_ = nullptr;
  ExecMode mode_ = ExecMode::coop;
  SimHooks* sim_ = nullptr;
};

/// Introspection over port parameter types of a kernel signature.
template <class P>
struct port_traits;

template <class T, PortSettings S>
struct port_traits<KernelReadPort<T, S>> {
  using value_type = T;
  static constexpr bool is_read = true;
  static constexpr PortSettings settings = S;
};

template <class T, PortSettings S>
struct port_traits<KernelWritePort<T, S>> {
  using value_type = T;
  static constexpr bool is_read = false;
  static constexpr PortSettings settings = S;
};

template <class P>
concept KernelPort = requires { port_traits<P>::is_read; };

}  // namespace cgsim

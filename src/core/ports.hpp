// cgsim -- kernel-facing streaming I/O port types (paper Sections 3.3, 3.6).
//
// KernelReadPort / KernelWritePort appear in COMPUTE_KERNEL signatures.
// Behavioural settings (beat width, runtime-parameter flag, buffer mode)
// are non-type template parameters; they take part in connection merging at
// graph-construction (compile) time. At run time a port is bound to one
// broadcast-channel endpoint and accessed with `co_await port.get()` /
// `co_await port.put(v)`, or in whole windows with
// `co_await port.get_n(span)` / `co_await port.put_n(span)`.
//
// Fast path: in the cooperative modes (coop, sim) a streaming port knows
// its channel is the `final` CoopChannel<T>, so the awaiters call its
// methods through a concrete pointer -- every channel operation in the
// simulation hot loop binds statically and inlines into the coroutine
// frame. The virtual TypedChannel interface remains in use only for the
// threaded backend and for runtime-parameter (RTP) channels.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>

#include "channel.hpp"
#include "port_config.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Runtime wiring of one kernel port; filled in by the RuntimeContext when
/// a serialized graph is instantiated (paper Section 3.6).
struct PortBinding {
  ChannelBase* channel = nullptr;
  int consumer = -1;  ///< broadcast endpoint for read ports
  ExecMode mode = ExecMode::coop;
  SimHooks* sim = nullptr;
  bool rtp = false;    ///< channel is a sticky runtime-parameter channel
  bool cross = false;  ///< coop_mt cross-shard edge (ShardChannel backend)
};

namespace detail {

/// Concrete CoopChannel<T>* when the binding is a cooperative-mode
/// streaming channel, nullptr otherwise (threaded mode, RTP channel, or a
/// coop_mt cross-shard edge, whose ShardChannel goes through the virtual
/// interface).
template <class T>
[[nodiscard]] inline CoopChannel<T>* coop_fast_path(const PortBinding& b) {
  if (b.channel == nullptr || b.mode == ExecMode::threaded || b.rtp ||
      b.cross) {
    return nullptr;
  }
  return static_cast<CoopChannel<T>*>(b.channel);
}

template <class T>
struct [[nodiscard]] ReadAwaiter {
  TypedChannel<T>* ch;
  CoopChannel<T>* coop;  ///< non-null => devirtualized cooperative path
  int consumer;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  T value{};
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (coop != nullptr) {
      st = coop->try_pop(consumer, value);  // static, inlinable
      return st != ChanStatus::blocked;
    }
    if (mode == ExecMode::threaded) {
      st = ch->blocking_pop(consumer, value) ? ChanStatus::ok
                                             : ChanStatus::closed;
      return true;
    }
    st = ch->try_pop(consumer, value);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    if (coop != nullptr) {
      coop->add_pop_waiter({&value, &st, h, consumer});
      return;
    }
    ch->add_pop_waiter({&value, &st, h, consumer});
  }
  T await_resume() {
    if (st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      sim->charge_port_access(settings, sizeof(T), /*is_read=*/true, ch);
    }
    return std::move(value);
  }
};

template <class T>
struct [[nodiscard]] WriteAwaiter {
  TypedChannel<T>* ch;
  CoopChannel<T>* coop;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  T value;
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (coop != nullptr) {
      st = coop->try_push(value);
      return st != ChanStatus::blocked;
    }
    if (mode == ExecMode::threaded) {
      st = ch->blocking_push(value) ? ChanStatus::ok : ChanStatus::closed;
      return true;
    }
    st = ch->try_push(value);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    if (coop != nullptr) {
      coop->add_push_waiter({&value, &st, h});
      return;
    }
    ch->add_push_waiter({&value, &st, h});
  }
  void await_resume() {
    if (st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      sim->charge_port_access(settings, sizeof(T), /*is_read=*/false, ch);
    }
  }
};

/// Bulk read: fills `dst[0..n)` with up to `n` stream elements, suspending
/// at most once. Resumes with the number of elements transferred; a short
/// count means the stream closed mid-batch (the next get/get_n raises
/// StreamClosed). Observably equivalent to n scalar get() calls.
template <class T>
struct [[nodiscard]] BulkReadAwaiter {
  TypedChannel<T>* ch;
  CoopChannel<T>* coop;
  int consumer;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  T* dst;
  std::size_t n;
  std::size_t got = 0;
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (coop != nullptr) {
      got = coop->try_pop_n(consumer, dst, n, st);
      return st != ChanStatus::blocked;
    }
    if (mode == ExecMode::threaded) {
      while (got < n && ch->blocking_pop(consumer, dst[got])) ++got;
      st = got == n ? ChanStatus::ok : ChanStatus::closed;
      return true;
    }
    got = ch->try_pop_n(consumer, dst, n, st);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    typename TypedChannel<T>::BulkPopWaiter w{
        dst, n, got, &got, &st, h, consumer, /*max_stamp=*/0};
    if (coop != nullptr) {
      coop->add_bulk_pop_waiter(w);
      return;
    }
    ch->add_bulk_pop_waiter(w);
  }
  std::size_t await_resume() {
    if (got == 0 && st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      for (std::size_t i = 0; i < got; ++i) {
        sim->charge_port_access(settings, sizeof(T), /*is_read=*/true, ch);
      }
    }
    return got;
  }
};

/// Bulk write: moves `src[0..n)` into the channel, suspending at most once
/// (the parked waiter streams through the ring incrementally, so `n` may
/// exceed the channel capacity). Raises StreamClosed when every downstream
/// consumer is gone. Observably equivalent to n scalar put() calls.
template <class T>
struct [[nodiscard]] BulkWriteAwaiter {
  TypedChannel<T>* ch;
  CoopChannel<T>* coop;
  ExecMode mode;
  SimHooks* sim;
  PortSettings settings;
  const T* src;
  std::size_t n;
  std::size_t done = 0;
  ChanStatus st = ChanStatus::blocked;

  bool await_ready() {
    if (coop != nullptr) {
      done = coop->try_push_n(src, n, st);
      return st != ChanStatus::blocked;
    }
    if (mode == ExecMode::threaded) {
      while (done < n) {
        if (!ch->blocking_push(src[done])) {
          st = ChanStatus::closed;
          return true;
        }
        ++done;
      }
      st = ChanStatus::ok;
      return true;
    }
    done = ch->try_push_n(src, n, st);
    return st != ChanStatus::blocked;
  }
  void await_suspend(std::coroutine_handle<> h) {
    typename TypedChannel<T>::BulkPushWaiter w{src, n, done, &done, &st, h};
    if (coop != nullptr) {
      coop->add_bulk_push_waiter(w);
      return;
    }
    ch->add_bulk_push_waiter(w);
  }
  void await_resume() {
    if (st == ChanStatus::closed) throw StreamClosed{};
    if (sim != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        sim->charge_port_access(settings, sizeof(T), /*is_read=*/false, ch);
      }
    }
  }
};

[[noreturn]] inline void reject_rtp_bulk() {
  throw std::logic_error{
      "bulk port ops (get_n/put_n) are not available on an RTP port"};
}

}  // namespace detail

/// Streaming input of a compute kernel.
///
/// `S` carries behaviour-affecting settings (paper Section 3.4): e.g.
/// `KernelReadPort<float, PortSettings{.rtp = true}>` declares an AIE
/// runtime parameter, `KernelReadPort<int, PortSettings{.beat_bits = 64}>`
/// pins the AXI beat width.
template <class T, PortSettings S = PortSettings{}>
class KernelReadPort {
 public:
  using value_type = T;
  static constexpr PortSettings settings = S;
  static constexpr bool is_read_port = true;

  KernelReadPort() = default;
  explicit KernelReadPort(const PortBinding& b)
      : ch_(static_cast<TypedChannel<T>*>(b.channel)),
        coop_(detail::coop_fast_path<T>(b)),
        consumer_(b.consumer),
        mode_(b.mode),
        sim_(b.sim),
        rtp_(b.rtp) {}

  /// Awaitable that yields the next stream element; raises StreamClosed
  /// (terminating the kernel) once the stream is exhausted for good.
  [[nodiscard]] detail::ReadAwaiter<T> get() const {
    return {ch_, coop_, consumer_, mode_, sim_, S};
  }

  /// Awaitable that fills `out` with up to `out.size()` elements in one
  /// suspension and yields the count transferred; a short count means the
  /// stream closed mid-batch. Not available on RTP ports.
  [[nodiscard]] detail::BulkReadAwaiter<T> get_n(std::span<T> out) const {
    if (rtp_) detail::reject_rtp_bulk();
    return {ch_, coop_, consumer_, mode_, sim_, S, out.data(), out.size()};
  }

  [[nodiscard]] TypedChannel<T>* channel() const { return ch_; }
  [[nodiscard]] int consumer() const { return consumer_; }

 private:
  TypedChannel<T>* ch_ = nullptr;
  CoopChannel<T>* coop_ = nullptr;
  int consumer_ = -1;
  ExecMode mode_ = ExecMode::coop;
  SimHooks* sim_ = nullptr;
  bool rtp_ = false;
};

/// Streaming output of a compute kernel.
template <class T, PortSettings S = PortSettings{}>
class KernelWritePort {
 public:
  using value_type = T;
  static constexpr PortSettings settings = S;
  static constexpr bool is_read_port = false;

  KernelWritePort() = default;
  explicit KernelWritePort(const PortBinding& b)
      : ch_(static_cast<TypedChannel<T>*>(b.channel)),
        coop_(detail::coop_fast_path<T>(b)),
        mode_(b.mode),
        sim_(b.sim),
        rtp_(b.rtp) {}

  /// Awaitable that writes one element, suspending while the channel is
  /// full; raises StreamClosed when every downstream consumer has finished.
  [[nodiscard]] detail::WriteAwaiter<T> put(T v) const {
    return {ch_, coop_, mode_, sim_, S, std::move(v)};
  }

  /// Awaitable that writes all of `in` in one suspension (the transfer
  /// streams through the ring, so `in.size()` may exceed the channel
  /// capacity). Not available on RTP ports.
  [[nodiscard]] detail::BulkWriteAwaiter<T> put_n(
      std::span<const T> in) const {
    if (rtp_) detail::reject_rtp_bulk();
    return {ch_, coop_, mode_, sim_, S, in.data(), in.size()};
  }

  [[nodiscard]] TypedChannel<T>* channel() const { return ch_; }

 private:
  TypedChannel<T>* ch_ = nullptr;
  CoopChannel<T>* coop_ = nullptr;
  ExecMode mode_ = ExecMode::coop;
  SimHooks* sim_ = nullptr;
  bool rtp_ = false;
};

/// Introspection over port parameter types of a kernel signature.
template <class P>
struct port_traits;

template <class T, PortSettings S>
struct port_traits<KernelReadPort<T, S>> {
  using value_type = T;
  static constexpr bool is_read = true;
  static constexpr PortSettings settings = S;
};

template <class T, PortSettings S>
struct port_traits<KernelWritePort<T, S>> {
  using value_type = T;
  static constexpr bool is_read = false;
  static constexpr PortSettings settings = S;
};

template <class P>
concept KernelPort = requires { port_traits<P>::is_read; };

}  // namespace cgsim

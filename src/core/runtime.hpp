// cgsim -- runtime graph instantiation and execution
// (paper Sections 3.6-3.8).
//
// RuntimeContext is the deserializer: it reconstructs a runnable copy of a
// flattened compute graph on the runtime heap -- channels first, then the
// kernels via their serialized thunks -- and manages the whole execution
// instance. Global inputs/outputs are attached as data source/sink
// coroutines reading/writing ordinary C++ containers (Section 3.7).
//
// Three execution strategies live here:
//   * run_coop():     cooperative single-threaded scheduling (cgsim proper)
//   * run_threaded(): one OS thread per kernel (the x86sim execution model)
//   * run_coop_mt():  sharded cooperative scheduling on a worker pool; the
//                     graph is partitioned (partition.hpp), intra-shard
//                     edges keep the single-threaded CoopChannel fast path,
//                     cross-shard edges get the lock-light ShardChannel.
// The cycle-approximate backend drives the same context with its own
// executor (see src/aiesim/).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "channel.hpp"
#include "dma.hpp"
#include "flatten.hpp"
#include "graph_view.hpp"
#include "kernel.hpp"
#include "partition.hpp"
#include "ports.hpp"
#include "scheduler.hpp"
#include "task.hpp"
#include "types.hpp"

namespace cgsim {

/// Raised when the containers supplied at invocation do not match the
/// graph's global port types.
class TypeMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

// NOTE: the DMA-transform branch is kept outside the co_await expressions;
// GCC 12 miscompiles conditional-operator temporaries of non-scalar type
// inside await expressions (the coroutine frame copy of the std::function
// gets clobbered).
template <class T>
KernelTask stream_source(KernelWritePort<T> out, std::span<const T> data,
                         int repetitions, dma::Transform<T> dma_transform) {
  for (int r = 0; r < repetitions; ++r) {
    if (dma_transform) {
      for (const T& v : data) co_await out.put(dma_transform(v));
    } else {
      for (const T& v : data) co_await out.put(v);
    }
  }
}

template <class T>
KernelTask stream_sink(KernelReadPort<T> in, std::vector<T>* out,
                       dma::Transform<T> dma_transform) {
  while (true) {
    T v = co_await in.get();  // terminates via StreamClosed
    if (dma_transform) {
      out->push_back(dma_transform(v));
    } else {
      out->push_back(std::move(v));
    }
  }
}

template <class T>
KernelTask rtp_source(KernelWritePort<T> out, T value) {
  co_await out.put(std::move(value));
}

template <class C>
concept DataContainer = requires(const C& c) {
  typename C::value_type;
  std::span<const typename C::value_type>{c};
};

}  // namespace detail

/// One execution instance of a compute graph (paper Section 3.6).
class RuntimeContext {
 public:
  struct TaskRecord {
    KernelTask task;
    std::string name;
    std::vector<ChannelBase*> out_channels;
    std::vector<std::pair<ChannelBase*, int>> in_endpoints;
    Realm realm = Realm::noextract;
    int kernel_index = -1;  ///< -1 for source/sink tasks
    int task_index = -1;    ///< dense id over all tasks (kernels + I/O)
    int shard = 0;          ///< coop_mt home shard
    bool finished = false;
    bool started = true;  ///< false: excluded from this run (resim skip set)
  };

  /// Deserializes `g`. When `exec` is null the context's own FIFO scheduler
  /// is used (cooperative mode); the cycle-approximate backend passes its
  /// event-queue executor and SimHooks instead. `workers`, `steal` and
  /// `shards` apply to ExecMode::coop_mt only (0 workers = hardware
  /// concurrency). With `steal` the graph is over-partitioned (~4 shards
  /// per worker, or exactly `shards` when nonzero) and executed by a
  /// work-stealing pool; otherwise one worker is pinned per shard.
  explicit RuntimeContext(const GraphView& g, ExecMode mode = ExecMode::coop,
                          Executor* exec = nullptr, SimHooks* sim = nullptr,
                          int workers = 0, bool steal = false, int shards = 0)
      : graph_(g), mode_(mode), sim_(sim) {
    exec_ = exec != nullptr ? exec : &sched_;
    if (mode_ == ExecMode::coop_mt) {
      int w = workers > 0
                  ? workers
                  : static_cast<int>(std::thread::hardware_concurrency());
      if (w < 1) w = 1;
      if (steal) {
        const int target = shards > 0 ? shards : w * 4;
        partition_ = partition_graph(g, target);
        pool_ = std::make_unique<StealingShardPool>(partition_.n_shards, w);
      } else {
        partition_ = partition_graph(g, w);
        pool_ = std::make_unique<ShardPool>(partition_.n_shards);
      }
    }
    // Recreate all channels from the serialized edge descriptors. Ping-pong
    // window connections are double buffers on hardware: unless the user
    // overrode the capacity, model exactly two windows in flight.
    channels_.reserve(g.edges.size());
    for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
      const FlatEdge& e = g.edges[ei];
      int capacity = e.capacity;
      if (e.settings.buffer == BufferMode::pingpong &&
          capacity == kDefaultChannelCapacity) {
        capacity = 2;
      }
      ChannelBase* ch = nullptr;
      if (pool_ != nullptr) {
        if (partition_.edge_cross[ei] != 0) {
          // The partitioner contracts RTP edges, so a cross-shard RTP edge
          // means the partition and the graph disagree.
          if (e.settings.rtp) {
            throw std::logic_error{
                "coop_mt partition cut a runtime-parameter edge"};
          }
          ch = e.vtable().create_shard(e.n_consumers, capacity,
                                       &pool_->router());
        } else {
          // Intra-shard edges are single-threaded by construction and keep
          // the cooperative ring, homed on the owning shard's executor.
          ch = e.vtable().create(
              ExecMode::coop, e.n_consumers, capacity, e.settings.rtp,
              &pool_->shard_exec(partition_.edge_home[ei]));
        }
      } else {
        ch = e.vtable().create(mode_, e.n_consumers, capacity, e.settings.rtp,
                               exec_);
      }
      ch->set_producers(e.n_producers);
      ch->set_edge_id(static_cast<int>(ei));
      if (sim_ != nullptr) ch->attach_sim_hooks(sim_);
      channels_.emplace_back(ch);
    }
    build_kernels();
  }

  /// (Re)creates all graph kernels through their serialized thunks. Called
  /// by the constructor and by reset_for_rerun(). With a `mask`, kernels
  /// whose entry is 0 get a placeholder record (started=false, no coroutine
  /// frame, no port bindings) -- the incremental re-simulation layer
  /// excludes them from the run anyway, so building their frames only to
  /// destroy them unresumed would be pure overhead. Task indices are
  /// unaffected: every kernel still occupies its slot in tasks().
  void build_kernels(const std::vector<char>* mask = nullptr) {
    const GraphView& g = graph_;
    tasks_.reserve(g.kernels.size());
    for (std::size_t ki = 0; ki < g.kernels.size(); ++ki) {
      const FlatKernel& k = g.kernels[ki];
      if (mask != nullptr && (*mask)[ki] == 0) {
        TaskRecord skip;
        skip.name = std::string{k.name};
        skip.realm = k.realm;
        skip.kernel_index = static_cast<int>(ki);
        skip.started = false;
        push_task(std::move(skip));
        continue;
      }
      std::vector<PortBinding> bindings;
      bindings.reserve(static_cast<std::size_t>(k.nports));
      TaskRecord rec;
      rec.name = std::string{k.name};
      rec.realm = k.realm;
      rec.kernel_index = static_cast<int>(ki);
      for (int p = 0; p < k.nports; ++p) {
        const FlatPort& fp =
            g.ports[static_cast<std::size_t>(k.first_port + p)];
        const FlatEdge& fe = g.edges[static_cast<std::size_t>(fp.edge)];
        ChannelBase* ch = channels_[static_cast<std::size_t>(fp.edge)].get();
        bindings.push_back(PortBinding{ch, fp.endpoint, mode_, sim_,
                                       fe.settings.rtp,
                                       edge_is_cross(fp.edge)});
        if (fp.is_read) {
          rec.in_endpoints.emplace_back(ch, fp.endpoint);
        } else {
          rec.out_channels.push_back(ch);
        }
      }
      if (pool_ != nullptr) {
        rec.shard = partition_.kernel_shard[ki];
      }
      rec.task = k.thunk(KernelBinding{bindings.data(), bindings.size()});
      push_task(std::move(rec));
    }
  }

  /// Rewinds the context for another run over the same channels: destroys
  /// all task coroutines (including attached sources/sinks), resets every
  /// channel to its freshly-constructed state, and rebuilds the graph
  /// kernels. Channel addresses are preserved, so engines that cached
  /// channel pointers stay valid; the caller re-attaches I/O and calls
  /// start_all(). Cooperative single-threaded modes only. `kernel_mask`
  /// (optional, one entry per kernel) elides frame construction for
  /// kernels excluded from the upcoming run -- see build_kernels().
  void reset_for_rerun(const std::vector<char>* kernel_mask = nullptr) {
    if (pool_ != nullptr || mode_ == ExecMode::threaded) {
      throw std::logic_error{
          "reset_for_rerun supports single-threaded cooperative modes only"};
    }
    tasks_.clear();
    by_handle_.clear();
    finalizers_.clear();
    for (auto& ch : channels_) ch->reset_for_rerun();
    build_kernels(kernel_mask);
  }

  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  // --- global I/O attachment (paper Section 3.7) ---

  /// Attaches a streaming data source. `dma_transform` models a DMA
  /// descriptor applied during the transfer (e.g. dma::CornerTurn).
  template <class T>
  void add_stream_source(std::size_t input_idx, std::span<const T> data,
                         int repetitions = 1,
                         dma::Transform<T> dma_transform = {}) {
    const FlatGlobal& in = global_input(input_idx, type_id<T>());
    auto* ch = channel_as<T>(in.edge);
    PortBinding b{ch,   -1, mode_, sim_, edge_is_rtp(in.edge),
                  edge_is_cross(in.edge)};
    TaskRecord rec;
    rec.name = "source#" + std::to_string(input_idx);
    rec.shard = shard_for_edge(in.edge);
    rec.out_channels.push_back(ch);
    rec.task = detail::stream_source<T>(KernelWritePort<T>{b}, data,
                                        repetitions,
                                        std::move(dma_transform));
    push_task(std::move(rec));
  }

  template <class T>
  void add_stream_sink(std::size_t output_idx, std::vector<T>& out,
                       dma::Transform<T> dma_transform = {}) {
    const FlatGlobal& go = global_output(output_idx, type_id<T>());
    auto* ch = channel_as<T>(go.edge);
    PortBinding b{ch,   go.endpoint, mode_, sim_, edge_is_rtp(go.edge),
                  edge_is_cross(go.edge)};
    TaskRecord rec;
    rec.name = "sink#" + std::to_string(output_idx);
    rec.shard = shard_for_edge(go.edge);
    rec.in_endpoints.emplace_back(ch, go.endpoint);
    rec.task = detail::stream_sink<T>(KernelReadPort<T>{b}, &out,
                                      std::move(dma_transform));
    push_task(std::move(rec));
  }

  template <class T>
  void add_rtp_source(std::size_t input_idx, T value) {
    const FlatGlobal& in = global_input(input_idx, type_id<T>());
    require_rtp(in.edge, "runtime-parameter source");
    auto* ch = channel_as<T>(in.edge);
    PortBinding b{ch, -1, mode_, sim_, /*rtp=*/true};
    TaskRecord rec;
    rec.name = "rtp-source#" + std::to_string(input_idx);
    rec.shard = shard_for_edge(in.edge);
    rec.out_channels.push_back(ch);
    rec.task = detail::rtp_source<T>(KernelWritePort<T>{b}, std::move(value));
    push_task(std::move(rec));
  }

  /// A runtime-parameter sink has no coroutine: the final value is copied
  /// out after the run completes.
  template <class T>
  void add_rtp_sink(std::size_t output_idx, T& out) {
    const FlatGlobal& go = global_output(output_idx, type_id<T>());
    require_rtp(go.edge, "runtime-parameter sink");
    auto* ch = static_cast<RtpChannel<T>*>(
        channels_[static_cast<std::size_t>(go.edge)].get());
    ch->consumer_done(go.endpoint);  // never blocks ring reuse
    finalizers_.push_back([ch, &out] { (void)ch->latest(out); });
  }

  // --- execution ---

  /// Cooperative single-threaded execution (paper Section 3.8).
  RunResult run_coop() {
    if (pool_ != nullptr) {
      throw std::logic_error{
          "context built for ExecMode::coop_mt; call run_coop_mt()"};
    }
    start_all();
    RunResult r{};
    r.resumes = sched_.run([this](std::coroutine_handle<> h) {
      on_task_finished(h);
    });
    return finish(r);
  }

  /// Sharded cooperative execution: one worker thread per graph shard,
  /// cross-shard wakes through the routing executor, two-phase quiescence.
  RunResult run_coop_mt() {
    if (pool_ == nullptr) {
      throw std::logic_error{
          "run_coop_mt() requires a context built with ExecMode::coop_mt"};
    }
    start_all();
    RunResult r{};
    r.resumes = pool_->run(
        [this](std::coroutine_handle<> h) { on_task_finished(h); });
    r.shards_used = pool_->n_shards();
    r.steals = pool_->steals();
    r.worker_loads = pool_->worker_loads();
    return finish(r);
  }

  /// Thread-per-kernel execution (the x86sim model, paper Section 5.2).
  RunResult run_threaded() {
    RunResult r{};
    {
      std::vector<std::jthread> threads;
      threads.reserve(tasks_.size());
      for (TaskRecord& rec : tasks_) {
        threads.emplace_back([this, &rec] {
          rec.task.handle().resume();
          if (rec.task.done()) on_task_finished_record(rec);
        });
      }
    }  // join
    r.resumes = tasks_.size();
    return finish(r);
  }

  /// Registers every task with the executor in suspended state; used by
  /// run_coop(), run_coop_mt() and the cycle-approximate engine. In coop_mt
  /// this also builds the cross-shard route table, so it must complete
  /// before the worker pool starts.
  void start_all() {
    for (TaskRecord& rec : tasks_) {
      if (!rec.started) continue;
      by_handle_[rec.task.handle().address()] = &rec;
      if (pool_ != nullptr) {
        pool_->register_task(rec.task.handle(), rec.shard);
      } else {
        exec_->make_ready(rec.task.handle(), 0);
      }
    }
  }

  /// Registers a single task with the executor; used by engines that start
  /// a task added after start_all() (e.g. a replay source).
  void start_one(TaskRecord& rec) {
    rec.started = true;
    by_handle_[rec.task.handle().address()] = &rec;
    exec_->make_ready(rec.task.handle(), 0);
  }

  /// Closure bookkeeping shared by all execution strategies.
  void on_task_finished(std::coroutine_handle<> h) {
    auto it = by_handle_.find(h.address());
    if (it != by_handle_.end()) on_task_finished_record(*it->second);
  }

  [[nodiscard]] std::vector<TaskRecord>& tasks() { return tasks_; }
  /// Registers a task record under the next dense task id.
  void push_task(TaskRecord&& rec) {
    rec.task_index = static_cast<int>(tasks_.size());
    tasks_.push_back(std::move(rec));
  }
  [[nodiscard]] const GraphView& graph() const { return graph_; }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  /// coop_mt only: the shard assignment computed at construction.
  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] ChannelBase* channel(int edge) {
    return channels_[static_cast<std::size_t>(edge)].get();
  }
  [[nodiscard]] TaskRecord* record_for(std::coroutine_handle<> h) {
    auto it = by_handle_.find(h.address());
    return it == by_handle_.end() ? nullptr : it->second;
  }

  /// Gathers statistics, runs finalizers, and rethrows the first kernel
  /// error, if any. Exposed for custom engines.
  RunResult finish(RunResult r) {
    for (TaskRecord& rec : tasks_) {
      if (!rec.started) continue;  // resim skip set: never ran by design
      if (rec.task.done()) {
        ++r.kernels_completed;
      } else {
        ++r.kernels_destroyed;
        r.deadlocked = true;
        r.blocked_kernels.push_back(rec.name);
      }
      if (std::exception_ptr e = rec.task.error()) {
        std::rethrow_exception(e);
      }
    }
    for (std::size_t o = 0; o < graph_.outputs.size(); ++o) {
      const FlatGlobal& go = graph_.outputs[o];
      if (go.endpoint >= 0) {
        r.items_consumed +=
            channels_[static_cast<std::size_t>(go.edge)]->popped(go.endpoint);
      }
    }
    for (auto& f : finalizers_) f();
    return r;
  }

 private:
  void on_task_finished_record(TaskRecord& rec) {
    if (rec.finished) return;
    rec.finished = true;
    for (auto& [ch, endpoint] : rec.in_endpoints) ch->consumer_done(endpoint);
    for (ChannelBase* ch : rec.out_channels) ch->producer_done();
  }

  [[nodiscard]] const FlatGlobal& global_input(std::size_t idx, TypeId t) {
    if (idx >= graph_.inputs.size()) {
      throw std::out_of_range{"graph input index out of range"};
    }
    const FlatGlobal& g = graph_.inputs[idx];
    check_type(g, t, "input");
    return g;
  }
  [[nodiscard]] const FlatGlobal& global_output(std::size_t idx, TypeId t) {
    if (idx >= graph_.outputs.size()) {
      throw std::out_of_range{"graph output index out of range"};
    }
    const FlatGlobal& g = graph_.outputs[idx];
    check_type(g, t, "output");
    return g;
  }
  void check_type(const FlatGlobal& g, TypeId t, const char* what) {
    if (g.type != t) {
      const FlatEdge& e = graph_.edges[static_cast<std::size_t>(g.edge)];
      throw TypeMismatchError{
          std::string{"graph "} + what + " element type mismatch: graph " +
          "expects " + std::string{e.vtable().type_name}};
    }
  }
  [[nodiscard]] bool edge_is_rtp(int edge) const {
    return graph_.edges[static_cast<std::size_t>(edge)].settings.rtp;
  }
  [[nodiscard]] bool edge_is_cross(int edge) const {
    return pool_ != nullptr &&
           partition_.edge_cross[static_cast<std::size_t>(edge)] != 0;
  }
  /// Home shard for a source/sink task attached to `edge`: the edge's
  /// owning shard, so every endpoint of an intra-shard channel runs on the
  /// thread that owns the channel's single-threaded state.
  [[nodiscard]] int shard_for_edge(int edge) const {
    return pool_ != nullptr
               ? partition_.edge_home[static_cast<std::size_t>(edge)]
               : 0;
  }
  void require_rtp(int edge, const char* what) {
    if (!graph_.edges[static_cast<std::size_t>(edge)].settings.rtp) {
      throw TypeMismatchError{
          std::string{what} + " attached to a non-RTP connection"};
    }
  }
  template <class T>
  [[nodiscard]] TypedChannel<T>* channel_as(int edge) {
    return static_cast<TypedChannel<T>*>(
        channels_[static_cast<std::size_t>(edge)].get());
  }

  GraphView graph_;
  ExecMode mode_;
  SimHooks* sim_;
  Executor* exec_;
  Scheduler sched_;
  Partition partition_;
  // The pool outlives channels (which hold shard-executor pointers), and
  // channels are declared before tasks so tasks (which reference channels)
  // are destroyed first.
  std::unique_ptr<ShardPoolBase> pool_;
  std::vector<std::unique_ptr<ChannelBase>> channels_;
  std::vector<TaskRecord> tasks_;
  std::unordered_map<void*, TaskRecord*> by_handle_;
  std::vector<std::function<void()>> finalizers_;
};

namespace detail {

template <class Arg>
void attach_io(RuntimeContext& ctx, const GraphView& g, const RunOptions& opts,
               std::size_t pos, Arg&& arg) {
  using V = std::remove_cvref_t<Arg>;
  const bool is_input = pos < g.inputs.size();
  const std::size_t idx = is_input ? pos : pos - g.inputs.size();
  // Whether `arg` could legally serve as a sink (mutable lvalue); const or
  // temporary arguments can only be sources.
  constexpr bool sinkable = std::is_lvalue_reference_v<Arg&&> &&
                            !std::is_const_v<std::remove_reference_t<Arg>>;
  if constexpr (DataContainer<V>) {
    using T = typename V::value_type;
    if (is_input) {
      ctx.add_stream_source<T>(idx, std::span<const T>{arg},
                               opts.repetitions);
    } else if constexpr (sinkable) {
      ctx.add_stream_sink<T>(idx, arg);
    } else {
      throw std::invalid_argument{
          "graph output sink must be a mutable lvalue container"};
    }
  } else {
    // Scalar: a runtime parameter (paper Section 3.7).
    if (is_input) {
      ctx.add_rtp_source<V>(idx, V{arg});
    } else if constexpr (sinkable) {
      ctx.add_rtp_sink<V>(idx, arg);
    } else {
      throw std::invalid_argument{
          "runtime-parameter sink must be a mutable lvalue"};
    }
  }
}

}  // namespace detail

/// Invokes a compute graph: positional data sources for every global input
/// first, then data sinks for every global output (paper Section 3.7).
/// Containers become element streams; scalars become runtime parameters.
template <class... Args>
RunResult run_graph(const GraphView& g, const RunOptions& opts,
                    Args&&... args) {
  if (sizeof...(args) != g.inputs.size() + g.outputs.size()) {
    throw std::invalid_argument{
        "graph invocation: expected one argument per global input and "
        "output"};
  }
  if (opts.mode == ExecMode::sim) {
    throw std::invalid_argument{
        "ExecMode::sim requires the cycle-approximate engine; use "
        "aiesim::simulate()"};
  }
  RuntimeContext ctx{g,            opts.mode,  nullptr,    nullptr,
                     opts.workers, opts.steal, opts.shards};
  std::size_t pos = 0;
  (detail::attach_io(ctx, g, opts, pos++, std::forward<Args>(args)), ...);
  if (opts.mode == ExecMode::threaded) return ctx.run_threaded();
  if (opts.mode == ExecMode::coop_mt) return ctx.run_coop_mt();
  return ctx.run_coop();
}

}  // namespace cgsim

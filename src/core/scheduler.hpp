// cgsim -- cooperative coroutine task scheduler (paper Section 3.8).
//
// Kernels are registered suspended and resumed FIFO until no coroutine can
// continue ("there is no explicit termination condition"). Channels hand
// coroutines back via Executor::make_ready exactly once per suspension, so
// the ready queue never holds duplicates.
#pragma once

#include <chrono>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>

#include "task.hpp"

namespace cgsim {

class Scheduler final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t /*not_before*/) override {
    ready_.push_back(h);
  }

  /// Runs until quiescence. `on_finished(h)` is invoked once for every
  /// coroutine that runs to completion, so the runtime can propagate
  /// end-of-stream closure to its channels.
  template <class OnFinished>
  std::uint64_t run(OnFinished&& on_finished) {
    std::uint64_t resumes = 0;
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.front();
      ready_.pop_front();
      h.resume();
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  /// Like run(), but accumulates the wall-clock time spent *inside*
  /// coroutine resumptions into `resume_seconds`. The difference between
  /// the caller's total wall time and `resume_seconds` is pure scheduling
  /// overhead -- the quantity the paper's perf profile reports as
  /// "synchronization" (Section 5.2), since channel operations inline into
  /// the kernel coroutines and attribute to the kernel symbol.
  ///
  /// The clock is sampled once per iteration and the previous reading is
  /// reused as the interval start, so each loop pays one `now()` call
  /// instead of two. The queue bookkeeping between two samples is charged
  /// to the adjacent resume window -- the same attribution perf makes when
  /// inlined channel operations land on kernel symbols -- which keeps the
  /// instrumentation itself out of the "synchronization" bucket it is
  /// trying to measure.
  template <class OnFinished>
  std::uint64_t run_instrumented(OnFinished&& on_finished,
                                 double& resume_seconds) {
    std::uint64_t resumes = 0;
    resume_seconds = 0.0;
    auto last = std::chrono::steady_clock::now();
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.front();
      ready_.pop_front();
      h.resume();
      const auto t = std::chrono::steady_clock::now();
      resume_seconds += std::chrono::duration<double>(t - last).count();
      last = t;
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  [[nodiscard]] bool idle() const { return ready_.empty(); }
  [[nodiscard]] std::size_t pending() const { return ready_.size(); }

 private:
  std::deque<std::coroutine_handle<>> ready_;
};

}  // namespace cgsim

// cgsim -- cooperative coroutine task scheduler (paper Section 3.8).
//
// Kernels are registered suspended and resumed FIFO until no coroutine can
// continue ("there is no explicit termination condition"). Channels hand
// coroutines back via Executor::make_ready exactly once per suspension, so
// the ready queue never holds duplicates.
//
// Besides the single-threaded Scheduler, this header provides the sharded
// execution layer used by ExecMode::coop_mt: one ShardExecutor (a
// cooperative scheduler plus a locked inbox for cross-shard wakes) per
// graph shard, and two interchangeable pools behind ShardPoolBase:
//
//   * ShardPool          -- one worker thread per shard, static balance
//                           (the original coop_mt engine).
//   * StealingShardPool  -- M workers over N >= M shards with bounded
//                           Chase-Lev deques of ready *shards*; idle
//                           workers steal whole shards from loaded ones
//                           (RunOptions::steal).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "steal.hpp"
#include "task.hpp"

namespace cgsim {

/// Flat circular FIFO of coroutine handles. The ready queue never holds
/// duplicates (channels complete each suspension exactly once), so its
/// occupancy is bounded by the task count; a power-of-two vector with
/// monotonic head/tail indices replaces std::deque's chunked allocation,
/// which showed up in the scheduling ablation.
class ReadyQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }

  void push(std::coroutine_handle<> h) {
    if (tail_ - head_ == buf_.size()) grow();
    buf_[tail_++ & mask_] = h;
  }

  /// Precondition: !empty().
  std::coroutine_handle<> pop() { return buf_[head_++ & mask_]; }

 private:
  void grow() {
    const std::size_t n = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<std::coroutine_handle<>> nb(n);
    const std::size_t count = tail_ - head_;
    for (std::size_t i = 0; i < count; ++i) nb[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(nb);
    mask_ = n - 1;
    head_ = 0;
    tail_ = count;
  }

  std::vector<std::coroutine_handle<>> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

class Scheduler final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    // The plain cooperative scheduler has no notion of virtual time; a
    // nonzero lower bound here means a virtual-time backend is driving the
    // wrong executor and its schedule would silently degrade to FIFO.
    assert(not_before == 0 &&
           "virtual-time make_ready routed to the plain FIFO scheduler");
    (void)not_before;
    ready_.push(h);
  }

  /// Runs until quiescence. `on_finished(h)` is invoked once for every
  /// coroutine that runs to completion, so the runtime can propagate
  /// end-of-stream closure to its channels.
  template <class OnFinished>
  std::uint64_t run(OnFinished&& on_finished) {
    std::uint64_t resumes = 0;
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.pop();
      h.resume();
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  /// Like run(), but accumulates the wall-clock time spent *inside*
  /// coroutine resumptions into `resume_seconds`. The difference between
  /// the caller's total wall time and `resume_seconds` is pure scheduling
  /// overhead -- the quantity the paper's perf profile reports as
  /// "synchronization" (Section 5.2), since channel operations inline into
  /// the kernel coroutines and attribute to the kernel symbol.
  ///
  /// The clock is sampled once per iteration and the previous reading is
  /// reused as the interval start, so each loop pays one `now()` call
  /// instead of two. The queue bookkeeping between two samples is charged
  /// to the adjacent resume window -- the same attribution perf makes when
  /// inlined channel operations land on kernel symbols -- which keeps the
  /// instrumentation itself out of the "synchronization" bucket it is
  /// trying to measure.
  template <class OnFinished>
  std::uint64_t run_instrumented(OnFinished&& on_finished,
                                 double& resume_seconds) {
    std::uint64_t resumes = 0;
    resume_seconds = 0.0;
    auto last = std::chrono::steady_clock::now();
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.pop();
      h.resume();
      const auto t = std::chrono::steady_clock::now();
      resume_seconds += std::chrono::duration<double>(t - last).count();
      last = t;
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  [[nodiscard]] bool idle() const { return ready_.empty(); }
  [[nodiscard]] std::size_t pending() const { return ready_.size(); }

 private:
  ReadyQueue ready_;
};

// ---------------------------------------------------------------------------
// Sharded cooperative execution (ExecMode::coop_mt).
// ---------------------------------------------------------------------------

class ShardExecutor;

/// Global termination state shared by the workers of one coop_mt run.
///
/// Quiescence protocol (two phases, no sleeps):
///   phase 1 (announce): a worker whose local ready queue and inbox are
///     both empty increments `idle` and marks itself parked under its inbox
///     lock. A cross-shard wake targeting a parked worker decrements `idle`
///     on the sleeper's behalf *inside the same critical section* that
///     un-parks it, so `idle == n_shards` can only be observed while no
///     worker is running and no wake is in flight.
///   phase 2 (verify): the worker whose increment reached `n_shards`
///     re-checks every shard's inbox under its lock and then re-reads
///     `idle`; only if both still agree is `done` published and every
///     worker woken for shutdown. A failed verification simply parks --
///     whichever worker was still active repeats the protocol later.
struct ShardQuiescence {
  int n_shards = 1;
  std::atomic<int> idle{0};
  std::atomic<bool> done{false};
  std::vector<ShardExecutor*> shards;
};

/// Cooperative scheduler for one shard plus the cross-shard handoff path.
///
/// The owner worker thread runs the local ReadyQueue without any locking.
/// make_ready() from any other thread (a cross-shard channel completing a
/// waiter, routed here) lands in a mutex-guarded inbox; if the shard is
/// parked the poster un-parks it, takes over its idle-count decrement, and
/// notifies -- so idle shards sleep on a condition variable instead of
/// spinning (the pthreadChannel parking discipline).
class ShardExecutor final : public Executor {
 public:
  ShardExecutor(int shard, ShardQuiescence* q) : shard_(shard), q_(q) {}

  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    assert(not_before == 0 &&
           "virtual-time make_ready routed to a shard executor");
    (void)not_before;
    if (std::this_thread::get_id() == owner_) {
      local_.push(h);
      return;
    }
    post_remote(h);
  }

  /// Pre-run registration from the controlling thread (workers not started
  /// yet, so the local queue is safe to touch).
  void seed(std::coroutine_handle<> h) { local_.push(h); }

  [[nodiscard]] int shard() const { return shard_; }
  /// Wall time spent sleeping on the condition variable during the last
  /// worker_loop; the pool subtracts it from wall time to get busy time.
  [[nodiscard]] double parked_seconds() const { return parked_s_; }

  /// Worker body; returns the number of coroutine resumptions performed.
  template <class OnFinished>
  std::uint64_t worker_loop(OnFinished&& on_finished) {
    owner_ = std::this_thread::get_id();
    parked_s_ = 0.0;
    std::uint64_t resumes = 0;
    for (;;) {
      while (!local_.empty()) {
        std::coroutine_handle<> h = local_.pop();
        h.resume();
        ++resumes;
        if (h.done()) on_finished(h);
      }
      if (drain_inbox()) continue;
      // Phase 1: announce idleness, then re-check the inbox under the lock
      // (a wake may have slipped in between the drain and the increment).
      const int n = q_->idle.fetch_add(1) + 1;
      std::unique_lock lk{m_};
      if (!inbox_.empty()) {
        lk.unlock();
        q_->idle.fetch_sub(1);
        continue;
      }
      parked_ = true;
      lk.unlock();
      if (n == q_->n_shards && verify_quiescent()) {
        announce_done();
        return resumes;
      }
      lk.lock();
      const auto park_t0 = std::chrono::steady_clock::now();
      cv_.wait(lk, [&] { return !parked_ || q_->done.load(); });
      parked_s_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - park_t0)
                       .count();
      if (parked_) {  // woken only by announce_done: global quiescence
        parked_ = false;
        return resumes;
      }
      // Woken with work: the poster already decremented the idle count.
    }
  }

 private:
  void post_remote(std::coroutine_handle<> h) {
    std::lock_guard lk{m_};
    inbox_.push_back(h);
    if (parked_) {
      // Take over the sleeper's idle decrement before it can run again, so
      // the global count never over-reports idleness.
      parked_ = false;
      q_->idle.fetch_sub(1);
      cv_.notify_one();
    }
  }

  /// Moves inbox arrivals onto the local ready queue. Owner thread only.
  bool drain_inbox() {
    std::lock_guard lk{m_};
    if (inbox_.empty()) return false;
    for (std::coroutine_handle<> h : inbox_) local_.push(h);
    inbox_.clear();
    return true;
  }

  /// Phase 2 of termination detection; see ShardQuiescence.
  [[nodiscard]] bool verify_quiescent() {
    for (ShardExecutor* s : q_->shards) {
      std::lock_guard lk{s->m_};
      if (!s->inbox_.empty()) return false;
    }
    // All inboxes observed empty; if nobody retracted an idle announcement
    // in the meantime the whole pool is quiescent.
    return q_->idle.load() == q_->n_shards;
  }

  void announce_done() {
    q_->done.store(true);
    for (ShardExecutor* s : q_->shards) {
      if (s == this) continue;
      std::lock_guard lk{s->m_};
      s->cv_.notify_one();
    }
  }

  int shard_;
  ShardQuiescence* q_;
  ReadyQueue local_;  // owner thread only
  std::thread::id owner_{};
  std::mutex m_;  // guards inbox_, parked_
  std::vector<std::coroutine_handle<>> inbox_;
  bool parked_ = false;
  double parked_s_ = 0.0;
  std::condition_variable cv_;
};

/// Thread-safe executor handed to cross-shard channels: completions may
/// fire on any worker thread, so each coroutine is routed to the shard
/// that owns it. The route table is built before the workers start and is
/// read-only during the run.
class RouterExecutor final : public Executor {
 public:
  void add_route(void* frame, Executor* target) { routes_[frame] = target; }

  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    auto it = routes_.find(h.address());
    assert(it != routes_.end() && "coroutine has no registered home shard");
    it->second->make_ready(h, not_before);
  }

 private:
  std::unordered_map<void*, Executor*> routes_;
};

/// Common interface of the two coop_mt worker pools, so RuntimeContext can
/// select static (ShardPool) or work-stealing (StealingShardPool)
/// execution per run without duplicating the channel wiring.
class ShardPoolBase {
 public:
  using OnFinishedFn = std::function<void(std::coroutine_handle<>)>;

  virtual ~ShardPoolBase() = default;

  [[nodiscard]] virtual int n_shards() const = 0;
  [[nodiscard]] virtual int n_workers() const = 0;
  /// Executor homing the given shard's intra-shard channels.
  [[nodiscard]] virtual Executor& shard_exec(int s) = 0;
  /// Thread-safe executor for cross-shard channels.
  [[nodiscard]] virtual Executor& router() = 0;
  /// Registers a task with its home shard before the run starts.
  virtual void register_task(std::coroutine_handle<> h, int shard) = 0;
  /// Runs to global quiescence; returns the total resumption count.
  /// `on_finished` must be safe to call from any worker thread.
  virtual std::uint64_t run(const OnFinishedFn& on_finished) = 0;
  /// Successful shard steals over the last run (0 for static pools).
  [[nodiscard]] virtual std::uint64_t steals() const = 0;
  /// Per-worker statistics of the last run.
  [[nodiscard]] virtual const std::vector<WorkerLoad>& worker_loads()
      const = 0;
};

/// Fixed pool of shard workers for one coop_mt run: owns the per-shard
/// executors, the cross-shard router, and the quiescence state. One worker
/// thread per shard; balance is whatever the static LPT packing gave.
class ShardPool final : public ShardPoolBase {
 public:
  explicit ShardPool(int n_shards) {
    q_.n_shards = n_shards < 1 ? 1 : n_shards;
    shards_.reserve(static_cast<std::size_t>(q_.n_shards));
    for (int s = 0; s < q_.n_shards; ++s) {
      shards_.push_back(std::make_unique<ShardExecutor>(s, &q_));
      q_.shards.push_back(shards_.back().get());
    }
    loads_.resize(static_cast<std::size_t>(q_.n_shards));
  }

  [[nodiscard]] int n_shards() const override { return q_.n_shards; }
  [[nodiscard]] int n_workers() const override { return q_.n_shards; }
  [[nodiscard]] ShardExecutor& shard(int s) {
    return *shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Executor& shard_exec(int s) override { return shard(s); }
  [[nodiscard]] Executor& router() override { return router_; }
  [[nodiscard]] std::uint64_t steals() const override { return 0; }
  [[nodiscard]] const std::vector<WorkerLoad>& worker_loads()
      const override {
    return loads_;
  }

  void register_task(std::coroutine_handle<> h, int shard) override {
    router_.add_route(h.address(), &this->shard(shard));
    this->shard(shard).seed(h);
  }

  /// Runs every shard worker to global quiescence and returns the total
  /// resumption count. `on_finished` must be safe to call from any worker
  /// thread (cgsim's closure bookkeeping touches only channels reachable
  /// from the finishing task, which are either shard-local or
  /// cross-shard-safe).
  std::uint64_t run(const OnFinishedFn& on_finished) override {
    q_.idle.store(0);
    q_.done.store(false);
    std::atomic<std::uint64_t> resumes{0};
    {
      std::vector<std::jthread> workers;
      workers.reserve(shards_.size());
      for (auto& sh : shards_) {
        workers.emplace_back([this, &resumes, &on_finished, s = sh.get()] {
          const auto t0 = std::chrono::steady_clock::now();
          const std::uint64_t n = s->worker_loop(on_finished);
          WorkerLoad& load = loads_[static_cast<std::size_t>(s->shard())];
          load = WorkerLoad{};
          load.resumes = n;
          load.busy_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count() -
                        s->parked_seconds();
          resumes.fetch_add(n);
        });
      }
    }  // join
    return resumes.load();
  }

 private:
  ShardQuiescence q_;
  std::vector<std::unique_ptr<ShardExecutor>> shards_;
  RouterExecutor router_;
  std::vector<WorkerLoad> loads_;
};

// ---------------------------------------------------------------------------
// Work-stealing shard execution (RunOptions::steal).
// ---------------------------------------------------------------------------

/// M worker threads over N >= M shards with per-worker bounded Chase-Lev
/// deques. Where ShardPool pins one worker per shard, this pool
/// over-partitions the graph (RuntimeContext uses ~4 shards per worker)
/// and lets idle workers steal ready shards from loaded workers.
///
/// The steal unit is a *shard*, not a task: intra-shard edges use the
/// single-threaded CoopChannel fast path, so two tasks of one shard must
/// never run concurrently. Migrating whole shards preserves that invariant
/// (at most one worker runs a shard at a time) while still rebalancing
/// dynamically. Results stay bit-identical to single-threaded coop
/// execution for the same reason cgsim graphs are deterministic at all --
/// blocking FIFO channels plus deterministic kernels form a Kahn process
/// network -- and the same-cycle FIFO contract holds because each shard's
/// ready queue and inbox are drained in FIFO order by whichever worker
/// runs the shard.
///
/// Shard state machine (posters transition under the shard's inbox mutex,
/// the acquiring worker CASes kQueued -> kRunning):
///
///   kIdle --post/seed--> kQueued --worker pops id--> kRunning
///   kRunning --drained, inbox empty--> kIdle
///   kRunning --inbox refilled during release--> kQueued (re-enqueued)
///
/// A shard is enqueued (in exactly one deque or the overflow list) iff
/// kQueued, so per-worker deque capacity next_pow2(n_shards + 1) can never
/// overflow. The release store leaving kRunning and the acquire CAS of the
/// next runner order successive runners of one shard, so its CoopChannel
/// state and ReadyQueue migrate safely between threads (TSan-visible
/// happens-before, no fences).
///
/// Termination is the two-phase counter protocol of ShardPool extended to
/// shard states: a worker that finds no runnable shard announces idleness;
/// the worker whose announcement completes the count verifies every shard
/// kIdle with an empty inbox, the overflow list empty, and the idle count
/// still full before publishing done. Parking uses one global
/// {mutex, condvar, epoch}: a worker snapshots the epoch before scanning
/// for work and sleeps only while the epoch is unchanged; posters bump the
/// epoch under the mutex after making work visible. A steal CAS that loses
/// a race can at worst leave the shard in the *active* victim's own deque
/// (only a worker's own thread pushes to its deque, so an idle worker's
/// deque is empty), hence no ready shard can be stranded with all workers
/// asleep.
class StealingShardPool final : public ShardPoolBase {
  enum : int { kIdle = 0, kQueued = 1, kRunning = 2 };

 public:
  /// Executor for one shard. Wakes from the shard's current runner go to
  /// the unlocked local ReadyQueue; wakes from any other thread land in
  /// the locked inbox (same split as ShardExecutor).
  class Shard final : public Executor {
   public:
    Shard(StealingShardPool* pool, int id) : pool_(pool), id_(id) {}

    void make_ready(std::coroutine_handle<> h,
                    std::uint64_t not_before) override {
      assert(not_before == 0 &&
             "virtual-time make_ready routed to a stealing shard executor");
      (void)not_before;
      if (runner_.load(std::memory_order_relaxed) ==
          std::this_thread::get_id()) {
        local_.push(h);
        return;
      }
      pool_->post_remote(*this, h);
    }

   private:
    friend class StealingShardPool;
    StealingShardPool* pool_;
    int id_;
    ReadyQueue local_;  // current runner only
    std::mutex m_;      // guards inbox_ and poster-side state_ transitions
    std::vector<std::coroutine_handle<>> inbox_;
    std::atomic<int> state_{kIdle};
    std::atomic<std::thread::id> runner_{};
  };

  StealingShardPool(int n_shards, int n_workers) {
    n_shards_ = n_shards < 1 ? 1 : n_shards;
    n_workers_ = n_workers < 1 ? 1 : n_workers;
    if (n_workers_ > n_shards_) n_workers_ = n_shards_;
    shards_.reserve(static_cast<std::size_t>(n_shards_));
    for (int s = 0; s < n_shards_; ++s) {
      shards_.push_back(std::make_unique<Shard>(this, s));
    }
    const auto deque_cap = static_cast<std::size_t>(n_shards_) + 1;
    workers_.reserve(static_cast<std::size_t>(n_workers_));
    for (int i = 0; i < n_workers_; ++i) {
      workers_.push_back(std::make_unique<Worker>(i, deque_cap));
    }
    loads_.resize(static_cast<std::size_t>(n_workers_));
  }

  [[nodiscard]] int n_shards() const override { return n_shards_; }
  [[nodiscard]] int n_workers() const override { return n_workers_; }
  [[nodiscard]] Executor& shard_exec(int s) override {
    return *shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Executor& router() override { return router_; }
  [[nodiscard]] std::uint64_t steals() const override { return steals_; }
  [[nodiscard]] const std::vector<WorkerLoad>& worker_loads()
      const override {
    return loads_;
  }

  /// Pre-run registration from the controlling thread (workers not
  /// started, so local queues and deques are safe to touch).
  void register_task(std::coroutine_handle<> h, int shard) override {
    Shard& s = *shards_[static_cast<std::size_t>(shard)];
    router_.add_route(h.address(), &s);
    s.local_.push(h);
    if (s.state_.load(std::memory_order_relaxed) == kIdle) {
      s.state_.store(kQueued, std::memory_order_relaxed);
      seeds_.push_back(shard);
    }
  }

  std::uint64_t run(const OnFinishedFn& on_finished) override {
    idle_.store(0);
    done_.store(false);
    // Deal seeded shards round-robin so the run starts balanced even
    // before any steal happens.
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
      const bool ok =
          workers_[i % workers_.size()]->deque.push_bottom(seeds_[i]);
      assert(ok && "seed overflowed a worker deque");
      (void)ok;
    }
    seeds_.clear();
    {
      std::vector<std::jthread> threads;
      threads.reserve(workers_.size());
      for (auto& w : workers_) {
        threads.emplace_back([this, &on_finished, worker = w.get()] {
          worker_main(*worker, on_finished);
        });
      }
    }  // join
    std::uint64_t resumes = 0;
    steals_ = 0;
    for (auto& w : workers_) {
      resumes += w->load.resumes;
      steals_ += w->load.steals;
      loads_[static_cast<std::size_t>(w->index)] = w->load;
    }
    return resumes;
  }

 private:
  struct Worker {
    Worker(int index, std::size_t deque_capacity)
        : index(index), deque(deque_capacity) {}
    int index;
    StealDeque<int> deque;
    WorkerLoad load;
  };

  /// Which pool/worker the current thread belongs to; lets posters push
  /// onto their own deque (the only thread allowed to) and everyone else
  /// fall back to the locked overflow list.
  struct Tls {
    StealingShardPool* pool;
    Worker* worker;
  };
  inline static thread_local Tls tls_{nullptr, nullptr};

  void post_remote(Shard& s, std::coroutine_handle<> h) {
    bool queue_it = false;
    {
      std::lock_guard lk{s.m_};
      s.inbox_.push_back(h);
      if (s.state_.load(std::memory_order_relaxed) == kIdle) {
        s.state_.store(kQueued, std::memory_order_relaxed);
        queue_it = true;
      }
      // kQueued: already in a deque/overflow and will drain the inbox when
      // run. kRunning: the runner's release-time inbox check is under this
      // same mutex, so it cannot miss the push. Neither case needs a wake.
    }
    if (queue_it) enqueue(s);
  }

  void enqueue(Shard& s) {
    if (tls_.pool == this && tls_.worker->deque.push_bottom(s.id_)) {
      signal_work();
      return;
    }
    // Non-worker thread (seeding helpers, finalizer-driven wakes) or a
    // full deque (impossible by capacity, kept as a safety net).
    {
      std::lock_guard lk{overflow_m_};
      overflow_.push_back(s.id_);
    }
    signal_work();
  }

  void signal_work() {
    // The epoch bump is under the park mutex so a sleeper's predicate
    // cannot miss it between its work scan and its wait.
    {
      std::lock_guard lk{park_m_};
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    park_cv_.notify_all();
  }

  Shard* find_work(Worker& w) {
    int id = -1;
    if (w.deque.pop_bottom(id)) return shards_[static_cast<std::size_t>(id)].get();
    {
      std::lock_guard lk{overflow_m_};
      if (!overflow_.empty()) {
        id = overflow_.front();
        overflow_.erase(overflow_.begin());  // FIFO; the list stays tiny
        return shards_[static_cast<std::size_t>(id)].get();
      }
    }
    const int nw = static_cast<int>(workers_.size());
    for (int i = 1; i < nw; ++i) {
      Worker& victim = *workers_[static_cast<std::size_t>((w.index + i) % nw)];
      ++w.load.steal_attempts;
      if (victim.deque.steal_top(id)) {
        ++w.load.steals;
        return shards_[static_cast<std::size_t>(id)].get();
      }
    }
    return nullptr;
  }

  void run_shard(Worker& w, Shard& s, const OnFinishedFn& on_finished) {
    int expected = kQueued;
    const bool acquired = s.state_.compare_exchange_strong(
        expected, kRunning, std::memory_order_acq_rel);
    assert(acquired && "dequeued shard was not kQueued");
    (void)acquired;
    s.runner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    for (;;) {
      {
        std::lock_guard lk{s.m_};
        for (std::coroutine_handle<> h : s.inbox_) s.local_.push(h);
        s.inbox_.clear();
      }
      if (s.local_.empty()) break;
      while (!s.local_.empty()) {
        std::coroutine_handle<> h = s.local_.pop();
        h.resume();
        ++w.load.resumes;
        if (h.done()) on_finished(h);
      }
    }
    // Drained. Release the shard; if the inbox refilled between the last
    // drain and here, requeue it (on our own deque -- thieves may take it).
    s.runner_.store(std::thread::id{}, std::memory_order_relaxed);
    bool requeue = false;
    {
      std::lock_guard lk{s.m_};
      if (s.inbox_.empty()) {
        s.state_.store(kIdle, std::memory_order_release);
      } else {
        s.state_.store(kQueued, std::memory_order_release);
        requeue = true;
      }
    }
    if (requeue) enqueue(s);
  }

  void worker_main(Worker& w, const OnFinishedFn& on_finished) {
    tls_ = Tls{this, &w};
    w.load = WorkerLoad{};
    const auto t_start = std::chrono::steady_clock::now();
    double parked_s = 0.0;
    for (;;) {
      const std::uint64_t e0 = epoch_.load(std::memory_order_seq_cst);
      if (Shard* s = find_work(w)) {
        run_shard(w, *s, on_finished);
        continue;
      }
      const int n = idle_.fetch_add(1, std::memory_order_seq_cst) + 1;
      if (n == n_workers_ && verify_quiescent()) {
        announce_done();
        break;
      }
      {
        std::unique_lock lk{park_m_};
        const auto t0 = std::chrono::steady_clock::now();
        park_cv_.wait(lk, [&] {
          return done_.load(std::memory_order_acquire) ||
                 epoch_.load(std::memory_order_relaxed) != e0;
        });
        parked_s += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      }
      idle_.fetch_sub(1, std::memory_order_seq_cst);
      if (done_.load(std::memory_order_acquire)) break;
    }
    tls_ = Tls{nullptr, nullptr};
    w.load.busy_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t_start)
                        .count() -
                    parked_s;
  }

  /// Phase 2 of termination: only trustworthy when called by the worker
  /// whose idle announcement completed the count.
  [[nodiscard]] bool verify_quiescent() {
    for (const auto& s : shards_) {
      std::lock_guard lk{s->m_};
      if (s->state_.load(std::memory_order_seq_cst) != kIdle ||
          !s->inbox_.empty()) {
        return false;
      }
    }
    {
      std::lock_guard lk{overflow_m_};
      if (!overflow_.empty()) return false;
    }
    // All shards idle and no queued work anywhere; if nobody retracted an
    // idle announcement in the meantime the pool is quiescent.
    return idle_.load(std::memory_order_seq_cst) == n_workers_;
  }

  void announce_done() {
    {
      std::lock_guard lk{park_m_};
      done_.store(true, std::memory_order_release);
    }
    park_cv_.notify_all();
  }

  int n_shards_ = 1;
  int n_workers_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int> seeds_;  // shards queued during registration
  RouterExecutor router_;
  std::mutex overflow_m_;
  std::vector<int> overflow_;  // kQueued shards not in any worker's deque
  std::mutex park_m_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> idle_{0};
  std::atomic<bool> done_{false};
  std::uint64_t steals_ = 0;
  std::vector<WorkerLoad> loads_;
};

}  // namespace cgsim

// cgsim -- cooperative coroutine task scheduler (paper Section 3.8).
//
// Kernels are registered suspended and resumed FIFO until no coroutine can
// continue ("there is no explicit termination condition"). Channels hand
// coroutines back via Executor::make_ready exactly once per suspension, so
// the ready queue never holds duplicates.
//
// Besides the single-threaded Scheduler, this header provides the sharded
// execution layer used by ExecMode::coop_mt: one ShardExecutor (a
// cooperative scheduler plus a locked inbox for cross-shard wakes) per
// graph shard, and a ShardPool running one worker thread per shard with
// two-phase global quiescence detection.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "task.hpp"

namespace cgsim {

/// Flat circular FIFO of coroutine handles. The ready queue never holds
/// duplicates (channels complete each suspension exactly once), so its
/// occupancy is bounded by the task count; a power-of-two vector with
/// monotonic head/tail indices replaces std::deque's chunked allocation,
/// which showed up in the scheduling ablation.
class ReadyQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }

  void push(std::coroutine_handle<> h) {
    if (tail_ - head_ == buf_.size()) grow();
    buf_[tail_++ & mask_] = h;
  }

  /// Precondition: !empty().
  std::coroutine_handle<> pop() { return buf_[head_++ & mask_]; }

 private:
  void grow() {
    const std::size_t n = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<std::coroutine_handle<>> nb(n);
    const std::size_t count = tail_ - head_;
    for (std::size_t i = 0; i < count; ++i) nb[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(nb);
    mask_ = n - 1;
    head_ = 0;
    tail_ = count;
  }

  std::vector<std::coroutine_handle<>> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

class Scheduler final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    // The plain cooperative scheduler has no notion of virtual time; a
    // nonzero lower bound here means a virtual-time backend is driving the
    // wrong executor and its schedule would silently degrade to FIFO.
    assert(not_before == 0 &&
           "virtual-time make_ready routed to the plain FIFO scheduler");
    (void)not_before;
    ready_.push(h);
  }

  /// Runs until quiescence. `on_finished(h)` is invoked once for every
  /// coroutine that runs to completion, so the runtime can propagate
  /// end-of-stream closure to its channels.
  template <class OnFinished>
  std::uint64_t run(OnFinished&& on_finished) {
    std::uint64_t resumes = 0;
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.pop();
      h.resume();
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  /// Like run(), but accumulates the wall-clock time spent *inside*
  /// coroutine resumptions into `resume_seconds`. The difference between
  /// the caller's total wall time and `resume_seconds` is pure scheduling
  /// overhead -- the quantity the paper's perf profile reports as
  /// "synchronization" (Section 5.2), since channel operations inline into
  /// the kernel coroutines and attribute to the kernel symbol.
  ///
  /// The clock is sampled once per iteration and the previous reading is
  /// reused as the interval start, so each loop pays one `now()` call
  /// instead of two. The queue bookkeeping between two samples is charged
  /// to the adjacent resume window -- the same attribution perf makes when
  /// inlined channel operations land on kernel symbols -- which keeps the
  /// instrumentation itself out of the "synchronization" bucket it is
  /// trying to measure.
  template <class OnFinished>
  std::uint64_t run_instrumented(OnFinished&& on_finished,
                                 double& resume_seconds) {
    std::uint64_t resumes = 0;
    resume_seconds = 0.0;
    auto last = std::chrono::steady_clock::now();
    while (!ready_.empty()) {
      std::coroutine_handle<> h = ready_.pop();
      h.resume();
      const auto t = std::chrono::steady_clock::now();
      resume_seconds += std::chrono::duration<double>(t - last).count();
      last = t;
      ++resumes;
      if (h.done()) on_finished(h);
    }
    return resumes;
  }

  [[nodiscard]] bool idle() const { return ready_.empty(); }
  [[nodiscard]] std::size_t pending() const { return ready_.size(); }

 private:
  ReadyQueue ready_;
};

// ---------------------------------------------------------------------------
// Sharded cooperative execution (ExecMode::coop_mt).
// ---------------------------------------------------------------------------

class ShardExecutor;

/// Global termination state shared by the workers of one coop_mt run.
///
/// Quiescence protocol (two phases, no sleeps):
///   phase 1 (announce): a worker whose local ready queue and inbox are
///     both empty increments `idle` and marks itself parked under its inbox
///     lock. A cross-shard wake targeting a parked worker decrements `idle`
///     on the sleeper's behalf *inside the same critical section* that
///     un-parks it, so `idle == n_shards` can only be observed while no
///     worker is running and no wake is in flight.
///   phase 2 (verify): the worker whose increment reached `n_shards`
///     re-checks every shard's inbox under its lock and then re-reads
///     `idle`; only if both still agree is `done` published and every
///     worker woken for shutdown. A failed verification simply parks --
///     whichever worker was still active repeats the protocol later.
struct ShardQuiescence {
  int n_shards = 1;
  std::atomic<int> idle{0};
  std::atomic<bool> done{false};
  std::vector<ShardExecutor*> shards;
};

/// Cooperative scheduler for one shard plus the cross-shard handoff path.
///
/// The owner worker thread runs the local ReadyQueue without any locking.
/// make_ready() from any other thread (a cross-shard channel completing a
/// waiter, routed here) lands in a mutex-guarded inbox; if the shard is
/// parked the poster un-parks it, takes over its idle-count decrement, and
/// notifies -- so idle shards sleep on a condition variable instead of
/// spinning (the pthreadChannel parking discipline).
class ShardExecutor final : public Executor {
 public:
  ShardExecutor(int shard, ShardQuiescence* q) : shard_(shard), q_(q) {}

  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    assert(not_before == 0 &&
           "virtual-time make_ready routed to a shard executor");
    (void)not_before;
    if (std::this_thread::get_id() == owner_) {
      local_.push(h);
      return;
    }
    post_remote(h);
  }

  /// Pre-run registration from the controlling thread (workers not started
  /// yet, so the local queue is safe to touch).
  void seed(std::coroutine_handle<> h) { local_.push(h); }

  [[nodiscard]] int shard() const { return shard_; }

  /// Worker body; returns the number of coroutine resumptions performed.
  template <class OnFinished>
  std::uint64_t worker_loop(OnFinished&& on_finished) {
    owner_ = std::this_thread::get_id();
    std::uint64_t resumes = 0;
    for (;;) {
      while (!local_.empty()) {
        std::coroutine_handle<> h = local_.pop();
        h.resume();
        ++resumes;
        if (h.done()) on_finished(h);
      }
      if (drain_inbox()) continue;
      // Phase 1: announce idleness, then re-check the inbox under the lock
      // (a wake may have slipped in between the drain and the increment).
      const int n = q_->idle.fetch_add(1) + 1;
      std::unique_lock lk{m_};
      if (!inbox_.empty()) {
        lk.unlock();
        q_->idle.fetch_sub(1);
        continue;
      }
      parked_ = true;
      lk.unlock();
      if (n == q_->n_shards && verify_quiescent()) {
        announce_done();
        return resumes;
      }
      lk.lock();
      cv_.wait(lk, [&] { return !parked_ || q_->done.load(); });
      if (parked_) {  // woken only by announce_done: global quiescence
        parked_ = false;
        return resumes;
      }
      // Woken with work: the poster already decremented the idle count.
    }
  }

 private:
  void post_remote(std::coroutine_handle<> h) {
    std::lock_guard lk{m_};
    inbox_.push_back(h);
    if (parked_) {
      // Take over the sleeper's idle decrement before it can run again, so
      // the global count never over-reports idleness.
      parked_ = false;
      q_->idle.fetch_sub(1);
      cv_.notify_one();
    }
  }

  /// Moves inbox arrivals onto the local ready queue. Owner thread only.
  bool drain_inbox() {
    std::lock_guard lk{m_};
    if (inbox_.empty()) return false;
    for (std::coroutine_handle<> h : inbox_) local_.push(h);
    inbox_.clear();
    return true;
  }

  /// Phase 2 of termination detection; see ShardQuiescence.
  [[nodiscard]] bool verify_quiescent() {
    for (ShardExecutor* s : q_->shards) {
      std::lock_guard lk{s->m_};
      if (!s->inbox_.empty()) return false;
    }
    // All inboxes observed empty; if nobody retracted an idle announcement
    // in the meantime the whole pool is quiescent.
    return q_->idle.load() == q_->n_shards;
  }

  void announce_done() {
    q_->done.store(true);
    for (ShardExecutor* s : q_->shards) {
      if (s == this) continue;
      std::lock_guard lk{s->m_};
      s->cv_.notify_one();
    }
  }

  int shard_;
  ShardQuiescence* q_;
  ReadyQueue local_;  // owner thread only
  std::thread::id owner_{};
  std::mutex m_;  // guards inbox_, parked_
  std::vector<std::coroutine_handle<>> inbox_;
  bool parked_ = false;
  std::condition_variable cv_;
};

/// Thread-safe executor handed to cross-shard channels: completions may
/// fire on any worker thread, so each coroutine is routed to the shard
/// that owns it. The route table is built before the workers start and is
/// read-only during the run.
class RouterExecutor final : public Executor {
 public:
  void add_route(void* frame, Executor* target) { routes_[frame] = target; }

  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    auto it = routes_.find(h.address());
    assert(it != routes_.end() && "coroutine has no registered home shard");
    it->second->make_ready(h, not_before);
  }

 private:
  std::unordered_map<void*, Executor*> routes_;
};

/// Fixed pool of shard workers for one coop_mt run: owns the per-shard
/// executors, the cross-shard router, and the quiescence state.
class ShardPool {
 public:
  explicit ShardPool(int n_shards) {
    q_.n_shards = n_shards < 1 ? 1 : n_shards;
    shards_.reserve(static_cast<std::size_t>(q_.n_shards));
    for (int s = 0; s < q_.n_shards; ++s) {
      shards_.push_back(std::make_unique<ShardExecutor>(s, &q_));
      q_.shards.push_back(shards_.back().get());
    }
  }

  [[nodiscard]] int n_shards() const { return q_.n_shards; }
  [[nodiscard]] ShardExecutor& shard(int s) {
    return *shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] Executor& router() { return router_; }

  /// Registers a task with its home shard before the run starts.
  void register_task(std::coroutine_handle<> h, int shard) {
    router_.add_route(h.address(), &this->shard(shard));
    this->shard(shard).seed(h);
  }

  /// Runs every shard worker to global quiescence and returns the total
  /// resumption count. `on_finished` must be safe to call from any worker
  /// thread (cgsim's closure bookkeeping touches only channels reachable
  /// from the finishing task, which are either shard-local or
  /// cross-shard-safe).
  template <class OnFinished>
  std::uint64_t run(OnFinished&& on_finished) {
    q_.idle.store(0);
    q_.done.store(false);
    std::atomic<std::uint64_t> resumes{0};
    {
      std::vector<std::jthread> workers;
      workers.reserve(shards_.size());
      for (auto& sh : shards_) {
        workers.emplace_back([&resumes, &on_finished, s = sh.get()] {
          resumes.fetch_add(s->worker_loop(on_finished));
        });
      }
    }  // join
    return resumes.load();
  }

 private:
  ShardQuiescence q_;
  std::vector<std::unique_ptr<ShardExecutor>> shards_;
  RouterExecutor router_;
};

}  // namespace cgsim

// cgsim -- runtime (dynamic) graph construction baseline.
//
// The paper's predecessor, Graphtoy, constructs compute graphs dynamically
// at run time; Section 3.1 explains why cgsim abandoned that model (graph
// extraction from arbitrary runtime construction reduces to the halting
// problem) and moved construction to compile time. This header implements
// the rejected alternative as a baseline: a DynamicGraphBuilder produces
// the same flattened representation at run time and executes through the
// same runtime — but its graphs are *opaque to the extractor* (there is no
// constexpr variable to ingest), which is precisely the paper's argument.
// It is also the escape hatch for genuinely data-dependent topologies.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "flatten.hpp"
#include "fn_traits.hpp"
#include "graph_view.hpp"
#include "kernel.hpp"
#include "ports.hpp"
#include "runtime.hpp"
#include "types.hpp"

namespace cgsim::rt {

/// Builds a compute graph at run time (the Graphtoy model). Edges and
/// kernels are added imperatively; `finalize()` computes endpoints and
/// yields a GraphView backed by this object (which must outlive it).
class DynamicGraphBuilder {
 public:
  /// Adds a stream connection of element type T; returns its edge id.
  template <class T>
  int add_edge(int capacity = kDefaultChannelCapacity,
               PortSettings settings = {}) {
    FlatEdge e;
    e.type = type_id<T>();
    e.vtable = &channel_vtable<T>;
    e.settings = settings;
    e.capacity = capacity;
    edges_.push_back(e);
    return static_cast<int>(edges_.size()) - 1;
  }

  /// Instantiates a kernel over existing edges (signature order). Element
  /// types are checked immediately; mismatches throw -- the dynamic
  /// counterpart of the compile errors the constexpr builder produces.
  template <class Def, class... Ts>
  void add_kernel(KernelHandle<Def> handle,
                  std::initializer_list<int> edge_ids) {
    add_kernel(handle, std::span<const int>{edge_ids.begin(),
                                            edge_ids.size()});
  }

  /// Runtime-arity overload: edge ids arriving from outside the process
  /// (the service codec deserializing a wire graph) live in containers,
  /// not braced lists.
  template <class Def>
  void add_kernel(KernelHandle<Def> /*handle*/,
                  std::span<const int> edge_ids) {
    using traits = fn_traits<decltype(&Def::body)>;
    if (edge_ids.size() != traits::arity) {
      throw std::invalid_argument{
          std::string{Def::kernel_name} +
          ": wrong number of edges for kernel signature"};
    }
    FlatKernel k;
    k.name = instance_name(Def::kernel_name);
    k.realm = Def::realm;
    k.thunk = &detail::kernel_thunk<Def>;
    k.first_port = static_cast<int>(ports_.size());
    k.nports = static_cast<int>(traits::arity);
    int i = 0;
    for (int edge : edge_ids) check_and_add_port<Def>(edge, i++);
    kernels_.push_back(k);
    finalized_ = false;
  }

  /// Declares `edge` a global input (a data source attaches to it).
  void add_input(int edge) {
    inputs_.push_back(
        FlatGlobal{edge, edges_.at(static_cast<std::size_t>(edge)).type, -1});
    finalized_ = false;
  }
  /// Declares `edge` a global output (a data sink drains it).
  void add_output(int edge) {
    outputs_.push_back(
        FlatGlobal{edge, edges_.at(static_cast<std::size_t>(edge)).type, -1});
    finalized_ = false;
  }

  /// Assigns broadcast endpoints and producer/consumer counts.
  void finalize() {
    std::vector<int> producers(edges_.size(), 0);
    std::vector<int> consumers(edges_.size(), 0);
    for (FlatPort& p : ports_) {
      const auto e = static_cast<std::size_t>(p.edge);
      if (p.is_read) {
        p.endpoint = consumers[e]++;
      } else {
        ++producers[e];
      }
    }
    for (FlatGlobal& in : inputs_) {
      ++producers[static_cast<std::size_t>(in.edge)];
    }
    for (FlatGlobal& out : outputs_) {
      out.endpoint = consumers[static_cast<std::size_t>(out.edge)]++;
    }
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      edges_[e].n_producers = producers[e];
      edges_[e].n_consumers = consumers[e];
    }
    finalized_ = true;
  }

  /// View over the built graph; finalizes lazily. The builder must outlive
  /// every use of the view.
  [[nodiscard]] GraphView view() {
    if (!finalized_) finalize();
    return GraphView{kernels_, ports_, edges_, inputs_, outputs_};
  }

  /// Runs the graph, mirroring the constexpr graphs' invocation.
  template <class... Args>
  RunResult operator()(Args&&... args) {
    return run_graph(view(), RunOptions{}, std::forward<Args>(args)...);
  }
  template <class... Args>
  RunResult run(const RunOptions& opts, Args&&... args) {
    return run_graph(view(), opts, std::forward<Args>(args)...);
  }

  [[nodiscard]] std::size_t num_kernels() const { return kernels_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

 private:
  template <class Def>
  void check_and_add_port(int edge, int index) {
    using traits = fn_traits<decltype(&Def::body)>;
    if (edge < 0 || static_cast<std::size_t>(edge) >= edges_.size()) {
      throw std::out_of_range{"dynamic graph: edge id out of range"};
    }
    FlatEdge& fe = edges_[static_cast<std::size_t>(edge)];
    // Resolve the port's static type/direction by index at run time.
    bool matched = false;
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (
          [&] {
            if (static_cast<int>(I) != index) return;
            using P = port_traits<typename traits::template arg<I>>;
            if (type_id<typename P::value_type>() != fe.type) {
              throw std::invalid_argument{
                  std::string{Def::kernel_name} +
                  ": edge element type does not match kernel port " +
                  std::to_string(index)};
            }
            const MergeResult m =
                try_merge_settings(fe.settings, P::settings);
            if (!m.ok) {
              throw std::invalid_argument{
                  std::string{Def::kernel_name} + ": " +
                  std::string{m.error}};
            }
            fe.settings = m.merged;
            ports_.push_back(FlatPort{P::is_read, edge, P::settings, -1});
            matched = true;
          }(),
          ...);
    }(std::make_index_sequence<traits::arity>{});
    if (!matched) {
      throw std::logic_error{"dynamic graph: bad port index"};
    }
  }

  /// Instance names must be unique within a graph: incremental
  /// re-simulation splices trace records by kernel name and falls back to
  /// a full rerun when a cone kernel shares its name with a skipped one,
  /// which would otherwise happen for every graph instantiating a handle
  /// twice. The first use keeps the handle's own (static) name; repeats
  /// get a "#<n>" suffix, owned here (deque nodes are pointer-stable, so
  /// the string_views survive builder moves and vector growth).
  std::string_view instance_name(std::string_view base) {
    const int n = name_uses_[std::string{base}]++;
    if (n == 0) return base;
    names_.push_back(std::string{base} + "#" + std::to_string(n));
    return names_.back();
  }

  std::vector<FlatKernel> kernels_;
  std::vector<FlatPort> ports_;
  std::vector<FlatEdge> edges_;
  std::vector<FlatGlobal> inputs_;
  std::vector<FlatGlobal> outputs_;
  std::map<std::string, int, std::less<>> name_uses_;
  std::deque<std::string> names_;
  bool finalized_ = false;
};

}  // namespace cgsim::rt

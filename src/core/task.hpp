// cgsim -- the kernel coroutine type and scheduler interface.
//
// Every compute kernel body is a C++20 coroutine of type KernelTask
// (paper Section 3.8). Kernels are created suspended, registered with the
// cooperative scheduler, and resumed until no coroutine can make progress.
// A kernel written as `while (true) { ... }` terminates through the
// StreamClosed signal raised by a read on an exhausted stream whose
// producers have all finished.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace cgsim {

/// Internal control-flow signal: a stream endpoint became permanently
/// unusable (all producers finished and the buffer drained, or all
/// consumers finished). Unwinds the kernel coroutine; the runtime treats it
/// as normal termination, mirroring how real AIE kernels stop when their
/// input windows stop arriving.
struct StreamClosed {};

/// Abstract cooperative executor; channels use it to move coroutines whose
/// pending channel operation completed back onto the ready list.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Marks `h` runnable. `not_before` is a virtual-time lower bound in
  /// cycles, used by the cycle-approximate backend; the plain cooperative
  /// scheduler ignores it. Channels complete an operation -- scalar or
  /// bulk; a parked bulk waiter may drain incrementally over several
  /// channel events first -- exactly once per suspension, so `h` is never
  /// enqueued twice.
  virtual void make_ready(std::coroutine_handle<> h,
                          std::uint64_t not_before) = 0;
};

/// Move-only handle to a suspended kernel coroutine.
///
/// Lifetime: the coroutine frame is destroyed by ~KernelTask. The runtime
/// context keeps every task alive for the whole graph execution and reaps
/// them afterwards (paper Section 3.8).
class [[nodiscard]] KernelTask {
 public:
  struct promise_type {
    std::exception_ptr error{};
    bool closed_normally = false;  // terminated via StreamClosed

    KernelTask get_return_object() {
      return KernelTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() {
      try {
        throw;
      } catch (const StreamClosed&) {
        closed_normally = true;
      } catch (...) {
        error = std::current_exception();
      }
    }
  };

  KernelTask() = default;
  explicit KernelTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  KernelTask(KernelTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  KernelTask& operator=(KernelTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const { return h_ && h_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const {
    return h_;
  }
  [[nodiscard]] std::exception_ptr error() const {
    return h_ ? h_.promise().error : nullptr;
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace cgsim

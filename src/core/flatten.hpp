// cgsim -- graph flattening / serialization (paper Section 3.5) and the
// user-facing make_compute_graph_v entry point (paper Section 3.4).
//
// The graph-definition lambda executes twice during constant evaluation:
// a first pass counts kernels, edges and ports (lambdas are pure, so both
// passes observe the same graph); a second pass fills a FlatGraph whose
// array dimensions come from the first pass. Both passes free every
// compile-time allocation before returning, as the standard requires.
#pragma once

#include <array>
#include <tuple>
#include <type_traits>
#include <utility>

#include "ct_graph.hpp"
#include "fn_traits.hpp"
#include "graph_view.hpp"
#include "port_config.hpp"
#include "types.hpp"

namespace cgsim {

// Defined in runtime.hpp; instantiated only when a graph is invoked.
template <class... Args>
RunResult run_graph(const GraphView& g, const RunOptions& opts,
                    Args&&... args);

/// Entity counts of a constructed graph; template parameter of FlatGraph.
struct GraphCounts {
  int kernels = 0;
  int edges = 0;
  int ports = 0;
  int inputs = 0;
  int outputs = 0;

  [[nodiscard]] constexpr bool operator==(const GraphCounts&) const = default;
};

namespace detail {

template <class T>
struct is_io_connector : std::false_type {};
template <class T>
struct is_io_connector<IoConnector<T>> : std::true_type {};

// Normalizes the lambda's return into a tuple of connectors.
template <class R>
constexpr auto as_output_tuple(R&& r) {
  using V = std::remove_cvref_t<R>;
  if constexpr (is_io_connector<V>::value) {
    return std::tuple<V>{std::forward<R>(r)};
  } else {
    return std::forward<R>(r);  // already a std::tuple
  }
}

struct LambdaRun {
  ct::Arena* root = nullptr;
};

/// Runs the graph-definition lambda: binds its parameters (the global
/// inputs) into a fresh arena, invokes it, folds the outputs' arenas back
/// into one root, and validates connectivity. `visit(root, inputs, outs)`
/// inspects the finished pointer graph before everything is freed.
template <class L, class Visit>
constexpr auto with_graph(const L& lam, Visit visit) {
  using traits = fn_traits<L>;
  auto* root = new ct::Arena{};
  typename traits::args_tuple inputs{};
  std::apply([&](auto&... in) { (in.bind(root), ...); }, inputs);
  auto outs = as_output_tuple(std::apply(lam, inputs));

  std::apply(
      [&](auto&... out) {
        (
            [&] {
              if (!out.bound()) {
                throw "graph output connector is not connected to anything";
              }
              ct::merge(root, out.arena());
            }(),
            ...);
      },
      outs);
  ct::Arena* final_root = ct::find_root(root);
  if (final_root->n_kernels == 0) {
    throw "compute graph contains no kernels";
  }
  ct::restore_creation_order(final_root);

  auto result = visit(final_root, inputs, outs);
  ct::destroy_arena(final_root);
  return result;
}

template <class L>
constexpr GraphCounts count_graph(const L& lam) {
  return with_graph(lam, [](ct::Arena* root, auto& inputs, auto& outs) {
    GraphCounts c{};
    c.kernels = root->n_kernels;
    c.edges = root->n_edges;
    c.ports = root->n_ports;
    c.inputs = static_cast<int>(std::tuple_size_v<
                                std::remove_cvref_t<decltype(inputs)>>);
    c.outputs = static_cast<int>(
        std::tuple_size_v<std::remove_cvref_t<decltype(outs)>>);
    return c;
  });
}

}  // namespace detail

/// The complete serialized compute graph (paper Figure 1, Section 3.5):
/// a literal type storable in a constexpr variable. Invoking the object
/// (paper Section 3.8) deserializes it onto the runtime heap and executes
/// it with the supplied data sources and sinks.
template <GraphCounts C>
struct FlatGraph {
  static constexpr GraphCounts counts = C;

  FlatKernel kernels[static_cast<std::size_t>(C.kernels)]{};
  FlatPort ports[static_cast<std::size_t>(C.ports)]{};
  FlatEdge edges[static_cast<std::size_t>(C.edges)]{};
  FlatGlobal inputs[static_cast<std::size_t>(C.inputs) + 1]{};   // +1: C.inputs may be 0
  FlatGlobal outputs[static_cast<std::size_t>(C.outputs) + 1]{};

  [[nodiscard]] GraphView view() const {
    return GraphView{
        std::span<const FlatKernel>{kernels, static_cast<std::size_t>(C.kernels)},
        std::span<const FlatPort>{ports, static_cast<std::size_t>(C.ports)},
        std::span<const FlatEdge>{edges, static_cast<std::size_t>(C.edges)},
        std::span<const FlatGlobal>{inputs, static_cast<std::size_t>(C.inputs)},
        std::span<const FlatGlobal>{outputs, static_cast<std::size_t>(C.outputs)},
    };
  }

  /// Runs the graph with positional data sources (graph inputs first) and
  /// sinks (graph outputs last) -- paper Section 3.7.
  template <class... Args>
  RunResult operator()(Args&&... args) const {
    return run_graph(view(), RunOptions{}, std::forward<Args>(args)...);
  }

  /// Runs with explicit options (execution backend, input repetitions).
  template <class... Args>
  RunResult run(const RunOptions& opts, Args&&... args) const {
    return run_graph(view(), opts, std::forward<Args>(args)...);
  }
};

namespace detail {

template <auto Lambda, GraphCounts C>
constexpr FlatGraph<C> build_flat() {
  return with_graph(Lambda, [](ct::Arena* root, auto& inputs, auto& outs) {
    FlatGraph<C> g{};
    // Assign edge indices and serialize edge metadata.
    int ei = 0;
    for (ct::EdgeNode* e = root->edges_head; e != nullptr; e = e->next) {
      e->index = ei;
      FlatEdge& fe = g.edges[ei];
      fe.type = e->type;
      fe.vtable = e->vtable;
      fe.settings = e->settings;
      fe.capacity = e->capacity;
      fe.n_attrs = e->n_attrs;
      for (int a = 0; a < e->n_attrs; ++a) fe.attrs[a] = e->attrs[a];
      ++ei;
    }
    // Serialize kernels and ports; assign broadcast endpoints.
    std::array<int, static_cast<std::size_t>(C.edges)> producers{};
    std::array<int, static_cast<std::size_t>(C.edges)> consumers{};
    int ki = 0;
    int pi = 0;
    for (ct::KernelNode* k = root->kernels_head; k != nullptr; k = k->next) {
      g.kernels[ki] =
          FlatKernel{k->name, k->realm, k->thunk, pi, k->nports};
      for (int p = 0; p < k->nports; ++p) {
        const ct::PortRef& pr = k->ports[p];
        const auto edge = static_cast<std::size_t>(pr.edge->index);
        FlatPort& fp = g.ports[pi++];
        fp.is_read = pr.is_read;
        fp.edge = pr.edge->index;
        fp.settings = pr.settings;
        fp.endpoint = pr.is_read ? consumers[edge]++ : -1;
        if (!pr.is_read) ++producers[edge];
      }
      ++ki;
    }
    // Global inputs feed edges (producers), outputs drain them (consumers).
    int gi = 0;
    std::apply(
        [&](auto&... in) {
          ((g.inputs[gi] = FlatGlobal{in.edge()->index, in.edge()->type, -1},
            ++producers[static_cast<std::size_t>(in.edge()->index)], ++gi),
           ...);
        },
        inputs);
    int go = 0;
    std::apply(
        [&](auto&... out) {
          ((g.outputs[go] =
                FlatGlobal{out.edge()->index, out.edge()->type,
                           consumers[static_cast<std::size_t>(
                               out.edge()->index)]++},
            ++go),
           ...);
        },
        outs);
    for (int e = 0; e < C.edges; ++e) {
      g.edges[e].n_producers = producers[static_cast<std::size_t>(e)];
      g.edges[e].n_consumers = consumers[static_cast<std::size_t>(e)];
    }
    return g;
  });
}

}  // namespace detail

/// Builds a complete, serialized compute graph from a graph-definition
/// lambda at compile time (paper Section 3.4, Figure 4):
///
///   constexpr auto the_graph = make_compute_graph_v<[](
///       IoConnector<int> a) {
///     IoConnector<int> b, c;
///     k(a, b);
///     k(b, c);
///     return std::make_tuple(c);
///   }>;
///
/// The lambda's parameters become the graph's global inputs; the returned
/// connectors its global outputs.
template <auto Lambda>
inline constexpr auto make_compute_graph_v =
    detail::build_flat<Lambda, detail::count_graph(Lambda)>();

}  // namespace cgsim

# Empty dependencies file for cgsim_extractor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcgsim_extractor.a"
)

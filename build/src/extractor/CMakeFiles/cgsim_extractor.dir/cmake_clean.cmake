file(REMOVE_RECURSE
  "CMakeFiles/cgsim_extractor.dir/codegen_aie.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/codegen_aie.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/codegen_hls.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/codegen_hls.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/coextract.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/coextract.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/extractor.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/extractor.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/graph_desc.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/graph_desc.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/lexer.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/lexer.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/manifest.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/manifest.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/registry.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/registry.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/rewriter.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/rewriter.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/scanner.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/scanner.cpp.o.d"
  "CMakeFiles/cgsim_extractor.dir/source_file.cpp.o"
  "CMakeFiles/cgsim_extractor.dir/source_file.cpp.o.d"
  "libcgsim_extractor.a"
  "libcgsim_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgsim_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extractor/codegen_aie.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/codegen_aie.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/codegen_aie.cpp.o.d"
  "/root/repo/src/extractor/codegen_hls.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/codegen_hls.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/codegen_hls.cpp.o.d"
  "/root/repo/src/extractor/coextract.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/coextract.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/coextract.cpp.o.d"
  "/root/repo/src/extractor/extractor.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/extractor.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/extractor.cpp.o.d"
  "/root/repo/src/extractor/graph_desc.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/graph_desc.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/graph_desc.cpp.o.d"
  "/root/repo/src/extractor/lexer.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/lexer.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/lexer.cpp.o.d"
  "/root/repo/src/extractor/manifest.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/manifest.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/manifest.cpp.o.d"
  "/root/repo/src/extractor/registry.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/registry.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/registry.cpp.o.d"
  "/root/repo/src/extractor/rewriter.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/rewriter.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/rewriter.cpp.o.d"
  "/root/repo/src/extractor/scanner.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/scanner.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/scanner.cpp.o.d"
  "/root/repo/src/extractor/source_file.cpp" "src/extractor/CMakeFiles/cgsim_extractor.dir/source_file.cpp.o" "gcc" "src/extractor/CMakeFiles/cgsim_extractor.dir/source_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

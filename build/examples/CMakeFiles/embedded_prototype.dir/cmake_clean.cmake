file(REMOVE_RECURSE
  "CMakeFiles/embedded_prototype.dir/embedded_prototype.cpp.o"
  "CMakeFiles/embedded_prototype.dir/embedded_prototype.cpp.o.d"
  "embedded_prototype"
  "embedded_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

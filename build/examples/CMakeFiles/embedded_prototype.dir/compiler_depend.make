# Empty compiler generated dependencies file for embedded_prototype.
# This may be replaced when dependencies are built.

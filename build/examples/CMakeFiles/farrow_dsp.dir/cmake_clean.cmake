file(REMOVE_RECURSE
  "CMakeFiles/farrow_dsp.dir/farrow_dsp.cpp.o"
  "CMakeFiles/farrow_dsp.dir/farrow_dsp.cpp.o.d"
  "farrow_dsp"
  "farrow_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farrow_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

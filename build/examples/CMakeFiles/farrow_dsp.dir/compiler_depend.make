# Empty compiler generated dependencies file for farrow_dsp.
# This may be replaced when dependencies are built.

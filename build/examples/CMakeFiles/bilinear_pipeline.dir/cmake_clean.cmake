file(REMOVE_RECURSE
  "CMakeFiles/bilinear_pipeline.dir/bilinear_pipeline.cpp.o"
  "CMakeFiles/bilinear_pipeline.dir/bilinear_pipeline.cpp.o.d"
  "bilinear_pipeline"
  "bilinear_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bilinear_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

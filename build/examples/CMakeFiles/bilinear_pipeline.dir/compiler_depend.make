# Empty compiler generated dependencies file for bilinear_pipeline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for gemm_offload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gemm_offload.dir/gemm_offload.cpp.o"
  "CMakeFiles/gemm_offload.dir/gemm_offload.cpp.o.d"
  "gemm_offload"
  "gemm_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_pipeline.dir/heterogeneous_pipeline.cpp.o"
  "CMakeFiles/heterogeneous_pipeline.dir/heterogeneous_pipeline.cpp.o.d"
  "heterogeneous_pipeline"
  "heterogeneous_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

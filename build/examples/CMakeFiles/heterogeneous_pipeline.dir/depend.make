# Empty dependencies file for heterogeneous_pipeline.
# This may be replaced when dependencies are built.

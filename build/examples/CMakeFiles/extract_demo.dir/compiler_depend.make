# Empty compiler generated dependencies file for extract_demo.
# This may be replaced when dependencies are built.

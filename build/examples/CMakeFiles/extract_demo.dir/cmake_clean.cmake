file(REMOVE_RECURSE
  "CMakeFiles/extract_demo.dir/extract_demo.cpp.o"
  "CMakeFiles/extract_demo.dir/extract_demo.cpp.o.d"
  "extract_demo"
  "extract_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

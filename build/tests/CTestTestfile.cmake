# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_aie[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_extractor[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(compile_fail.settings_conflict "/usr/bin/cmake" "--build" "/root/repo/build" "--target" "cf_settings_conflict")
set_tests_properties(compile_fail.settings_conflict PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compile_fail.rtp_stream_conflict "/usr/bin/cmake" "--build" "/root/repo/build" "--target" "cf_rtp_stream_conflict")
set_tests_properties(compile_fail.rtp_stream_conflict PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compile_fail.connector_type_mismatch "/usr/bin/cmake" "--build" "/root/repo/build" "--target" "cf_connector_type_mismatch")
set_tests_properties(compile_fail.connector_type_mismatch PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compile_fail.wrong_arity "/usr/bin/cmake" "--build" "/root/repo/build" "--target" "cf_wrong_arity")
set_tests_properties(compile_fail.wrong_arity PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compile_fail.unconnected_output "/usr/bin/cmake" "--build" "/root/repo/build" "--target" "cf_unconnected_output")
set_tests_properties(compile_fail.unconnected_output PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")

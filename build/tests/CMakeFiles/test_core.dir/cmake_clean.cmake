file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_channel.cpp.o"
  "CMakeFiles/test_core.dir/core/test_channel.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_channel_fuzz.cpp.o"
  "CMakeFiles/test_core.dir/core/test_channel_fuzz.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ct_graph.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ct_graph.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dot_dma.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dot_dma.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dynamic_graph.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dynamic_graph.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_flatten.cpp.o"
  "CMakeFiles/test_core.dir/core/test_flatten.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_port_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_port_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_task_scheduler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_task_scheduler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_validate.cpp.o"
  "CMakeFiles/test_core.dir/core/test_validate.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_channel.cpp" "tests/CMakeFiles/test_core.dir/core/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_channel.cpp.o.d"
  "/root/repo/tests/core/test_channel_fuzz.cpp" "tests/CMakeFiles/test_core.dir/core/test_channel_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_channel_fuzz.cpp.o.d"
  "/root/repo/tests/core/test_ct_graph.cpp" "tests/CMakeFiles/test_core.dir/core/test_ct_graph.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ct_graph.cpp.o.d"
  "/root/repo/tests/core/test_dot_dma.cpp" "tests/CMakeFiles/test_core.dir/core/test_dot_dma.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dot_dma.cpp.o.d"
  "/root/repo/tests/core/test_dynamic_graph.cpp" "tests/CMakeFiles/test_core.dir/core/test_dynamic_graph.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dynamic_graph.cpp.o.d"
  "/root/repo/tests/core/test_flatten.cpp" "tests/CMakeFiles/test_core.dir/core/test_flatten.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_flatten.cpp.o.d"
  "/root/repo/tests/core/test_port_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_port_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_port_config.cpp.o.d"
  "/root/repo/tests/core/test_runtime.cpp" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "/root/repo/tests/core/test_session.cpp" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "/root/repo/tests/core/test_task_scheduler.cpp" "tests/CMakeFiles/test_core.dir/core/test_task_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_task_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_validate.cpp" "tests/CMakeFiles/test_core.dir/core/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for test_aie.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_aie.dir/aie/test_accum.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_accum.cpp.o.d"
  "CMakeFiles/test_aie.dir/aie/test_api.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_api.cpp.o.d"
  "CMakeFiles/test_aie.dir/aie/test_api_ext.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_api_ext.cpp.o.d"
  "CMakeFiles/test_aie.dir/aie/test_cycle_model.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_cycle_model.cpp.o.d"
  "CMakeFiles/test_aie.dir/aie/test_intrinsics.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_intrinsics.cpp.o.d"
  "CMakeFiles/test_aie.dir/aie/test_vector.cpp.o"
  "CMakeFiles/test_aie.dir/aie/test_vector.cpp.o.d"
  "test_aie"
  "test_aie.pdb"
  "test_aie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aie/test_accum.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_accum.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_accum.cpp.o.d"
  "/root/repo/tests/aie/test_api.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_api.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_api.cpp.o.d"
  "/root/repo/tests/aie/test_api_ext.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_api_ext.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_api_ext.cpp.o.d"
  "/root/repo/tests/aie/test_cycle_model.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_cycle_model.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_cycle_model.cpp.o.d"
  "/root/repo/tests/aie/test_intrinsics.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_intrinsics.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_intrinsics.cpp.o.d"
  "/root/repo/tests/aie/test_vector.cpp" "tests/CMakeFiles/test_aie.dir/aie/test_vector.cpp.o" "gcc" "tests/CMakeFiles/test_aie.dir/aie/test_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cf_rtp_stream_conflict.dir/compile_fail/rtp_stream_conflict.cpp.o"
  "CMakeFiles/cf_rtp_stream_conflict.dir/compile_fail/rtp_stream_conflict.cpp.o.d"
  "cf_rtp_stream_conflict"
  "cf_rtp_stream_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_rtp_stream_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cf_rtp_stream_conflict.
# This may be replaced when dependencies are built.

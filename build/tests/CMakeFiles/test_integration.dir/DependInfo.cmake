
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_apps_extract.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_apps_extract.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_apps_extract.cpp.o.d"
  "/root/repo/tests/integration/test_backend_equivalence.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_backend_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_backend_equivalence.cpp.o.d"
  "/root/repo/tests/integration/test_roundtrip.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_roundtrip.cpp.o.d"
  "/root/repo/tests/integration/test_roundtrip_ext.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_roundtrip_ext.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_roundtrip_ext.cpp.o.d"
  "/root/repo/tests/integration/test_stress.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

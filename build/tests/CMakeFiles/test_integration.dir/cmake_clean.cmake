file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_apps_extract.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_apps_extract.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_backend_equivalence.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_backend_equivalence.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_roundtrip.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_roundtrip.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_roundtrip_ext.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_roundtrip_ext.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_stress.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_stress.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_extractor.dir/extractor/test_codegen.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_codegen.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_codegen_hls.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_codegen_hls.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_coextract.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_coextract.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_edge_cases.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_graph_desc.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_graph_desc.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_lexer.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_lexer.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_registry_driver.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_registry_driver.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_rewriter.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_rewriter.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_scanner.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_scanner.cpp.o.d"
  "CMakeFiles/test_extractor.dir/extractor/test_template_kernels.cpp.o"
  "CMakeFiles/test_extractor.dir/extractor/test_template_kernels.cpp.o.d"
  "test_extractor"
  "test_extractor.pdb"
  "test_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extractor/test_codegen.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_codegen.cpp.o.d"
  "/root/repo/tests/extractor/test_codegen_hls.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_codegen_hls.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_codegen_hls.cpp.o.d"
  "/root/repo/tests/extractor/test_coextract.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_coextract.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_coextract.cpp.o.d"
  "/root/repo/tests/extractor/test_edge_cases.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_edge_cases.cpp.o.d"
  "/root/repo/tests/extractor/test_graph_desc.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_graph_desc.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_graph_desc.cpp.o.d"
  "/root/repo/tests/extractor/test_lexer.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_lexer.cpp.o.d"
  "/root/repo/tests/extractor/test_registry_driver.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_registry_driver.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_registry_driver.cpp.o.d"
  "/root/repo/tests/extractor/test_rewriter.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_rewriter.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_rewriter.cpp.o.d"
  "/root/repo/tests/extractor/test_scanner.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_scanner.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_scanner.cpp.o.d"
  "/root/repo/tests/extractor/test_template_kernels.cpp" "tests/CMakeFiles/test_extractor.dir/extractor/test_template_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_extractor.dir/extractor/test_template_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cf_settings_conflict.dir/compile_fail/settings_conflict.cpp.o"
  "CMakeFiles/cf_settings_conflict.dir/compile_fail/settings_conflict.cpp.o.d"
  "cf_settings_conflict"
  "cf_settings_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_settings_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cf_settings_conflict.
# This may be replaced when dependencies are built.

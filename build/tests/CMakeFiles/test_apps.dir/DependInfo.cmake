
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_bilinear.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_bilinear.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_bilinear.cpp.o.d"
  "/root/repo/tests/apps/test_bitonic.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_bitonic.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_bitonic.cpp.o.d"
  "/root/repo/tests/apps/test_farrow.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_farrow.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_farrow.cpp.o.d"
  "/root/repo/tests/apps/test_fft.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_fft.cpp.o.d"
  "/root/repo/tests/apps/test_fir.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_fir.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_fir.cpp.o.d"
  "/root/repo/tests/apps/test_gemm.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_gemm.cpp.o.d"
  "/root/repo/tests/apps/test_iir.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_iir.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_iir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_bilinear.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_bilinear.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_bitonic.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_bitonic.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_farrow.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_farrow.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_fft.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_fft.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_fir.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_fir.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_gemm.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_gemm.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_iir.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_iir.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

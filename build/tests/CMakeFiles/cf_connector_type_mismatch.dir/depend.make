# Empty dependencies file for cf_connector_type_mismatch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cf_connector_type_mismatch.dir/compile_fail/connector_type_mismatch.cpp.o"
  "CMakeFiles/cf_connector_type_mismatch.dir/compile_fail/connector_type_mismatch.cpp.o.d"
  "cf_connector_type_mismatch"
  "cf_connector_type_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_connector_type_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aiesim/test_cost_model.cpp" "tests/CMakeFiles/test_sim.dir/aiesim/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/aiesim/test_cost_model.cpp.o.d"
  "/root/repo/tests/aiesim/test_engine.cpp" "tests/CMakeFiles/test_sim.dir/aiesim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/aiesim/test_engine.cpp.o.d"
  "/root/repo/tests/aiesim/test_gmio_cost.cpp" "tests/CMakeFiles/test_sim.dir/aiesim/test_gmio_cost.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/aiesim/test_gmio_cost.cpp.o.d"
  "/root/repo/tests/aiesim/test_placement.cpp" "tests/CMakeFiles/test_sim.dir/aiesim/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/aiesim/test_placement.cpp.o.d"
  "/root/repo/tests/aiesim/test_tile_stats.cpp" "tests/CMakeFiles/test_sim.dir/aiesim/test_tile_stats.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/aiesim/test_tile_stats.cpp.o.d"
  "/root/repo/tests/x86sim/test_x86sim.cpp" "tests/CMakeFiles/test_sim.dir/x86sim/test_x86sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/x86sim/test_x86sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extractor/CMakeFiles/cgsim_extractor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/aiesim/test_cost_model.cpp.o"
  "CMakeFiles/test_sim.dir/aiesim/test_cost_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/aiesim/test_engine.cpp.o"
  "CMakeFiles/test_sim.dir/aiesim/test_engine.cpp.o.d"
  "CMakeFiles/test_sim.dir/aiesim/test_gmio_cost.cpp.o"
  "CMakeFiles/test_sim.dir/aiesim/test_gmio_cost.cpp.o.d"
  "CMakeFiles/test_sim.dir/aiesim/test_placement.cpp.o"
  "CMakeFiles/test_sim.dir/aiesim/test_placement.cpp.o.d"
  "CMakeFiles/test_sim.dir/aiesim/test_tile_stats.cpp.o"
  "CMakeFiles/test_sim.dir/aiesim/test_tile_stats.cpp.o.d"
  "CMakeFiles/test_sim.dir/x86sim/test_x86sim.cpp.o"
  "CMakeFiles/test_sim.dir/x86sim/test_x86sim.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

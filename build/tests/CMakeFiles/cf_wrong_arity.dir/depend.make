# Empty dependencies file for cf_wrong_arity.
# This may be replaced when dependencies are built.

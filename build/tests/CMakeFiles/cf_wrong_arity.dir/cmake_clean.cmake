file(REMOVE_RECURSE
  "CMakeFiles/cf_wrong_arity.dir/compile_fail/wrong_arity.cpp.o"
  "CMakeFiles/cf_wrong_arity.dir/compile_fail/wrong_arity.cpp.o.d"
  "cf_wrong_arity"
  "cf_wrong_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_wrong_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cf_unconnected_output.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cf_unconnected_output.dir/compile_fail/unconnected_output.cpp.o"
  "CMakeFiles/cf_unconnected_output.dir/compile_fail/unconnected_output.cpp.o.d"
  "cf_unconnected_output"
  "cf_unconnected_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_unconnected_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

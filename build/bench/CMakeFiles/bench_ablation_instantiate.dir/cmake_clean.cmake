file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_instantiate.dir/bench_ablation_instantiate.cpp.o"
  "CMakeFiles/bench_ablation_instantiate.dir/bench_ablation_instantiate.cpp.o.d"
  "bench_ablation_instantiate"
  "bench_ablation_instantiate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_instantiate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

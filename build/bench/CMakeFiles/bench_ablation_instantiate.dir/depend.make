# Empty dependencies file for bench_ablation_instantiate.
# This may be replaced when dependencies are built.

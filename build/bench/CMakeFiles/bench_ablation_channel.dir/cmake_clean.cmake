file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_channel.dir/bench_ablation_channel.cpp.o"
  "CMakeFiles/bench_ablation_channel.dir/bench_ablation_channel.cpp.o.d"
  "bench_ablation_channel"
  "bench_ablation_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

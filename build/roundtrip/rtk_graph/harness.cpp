
#include <cstdio>
#include <vector>
#include "kernel_decls.hpp"

int main() {
  std::vector<float> in{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> out;
  input_stream<float> s_in{in.data(), in.size()};
  output_stream<float> s_out{&out};
  try {
    rtk_scale_aie(&s_in, &s_out);
  } catch (const end_of_stream&) {
    // Stream drained: the kernel's while(true) loop ends here, exactly as
    // it would on hardware when the PLIO stops delivering data.
  }
  if (out.size() != 4) return 1;
  for (std::size_t i = 0; i < 4; ++i) {
    if (out[i] != 3.0f * in[i]) return 2;
  }
  std::puts("roundtrip ok");
  return 0;
}


#pragma once
#include <cstddef>
#include <vector>

struct end_of_stream {};

template <class T>
struct input_stream {
  const T* data;
  std::size_t n;
  std::size_t i = 0;
};
template <class T>
T readincr(input_stream<T>* s) {
  if (s->i >= s->n) throw end_of_stream{};
  return s->data[s->i++];
}

template <class T>
struct output_stream {
  std::vector<T>* out;
};
template <class T>
void writeincr(output_stream<T>* s, const T& v) { s->out->push_back(v); }

template <class T>
struct input_window {
  const T* data;
  std::size_t n;
  std::size_t i = 0;
};
template <class T>
void window_readincr(input_window<T>* w, T& v) {
  if (w->i >= w->n) throw end_of_stream{};
  v = w->data[w->i++];
}

template <class T>
struct output_window {
  std::vector<T>* out;
};
template <class T>
void window_writeincr(output_window<T>* w, const T& v) {
  w->out->push_back(v);
}


#include "core/cgsim.hpp"

constexpr float kRoundtripScale = 3.0f;

COMPUTE_KERNEL(aie, rtk_scale,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(kRoundtripScale * co_await in.get());
  }
}


#pragma once
#include <deque>
namespace hls {
template <class T>
class stream {
 public:
  T read() {
    T v = q_.front();
    q_.pop_front();
    return v;
  }
  void write(const T& v) { q_.push_back(v); }
  bool empty() const { return q_.empty(); }
 private:
  std::deque<T> q_;
};
}  // namespace hls

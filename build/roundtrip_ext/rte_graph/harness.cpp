
#include <cstdio>
#include <vector>
#include "kernel_decls.hpp"
int main() {
  std::vector<int> in{1, 2, 3};
  std::vector<float> out;
  input_stream<int> s_in{in.data(), in.size()};
  output_stream<float> s_out{&out};
  try {
    rte_cast_int_aie(&s_in, &s_out);
  } catch (const end_of_stream&) {
  }
  if (out.size() != 3) return 1;
  for (std::size_t i = 0; i < 3; ++i) {
    if (out[i] != 2.0f * static_cast<float>(in[i])) return 2;
  }
  return 0;
}


#include "core/cgsim.hpp"

COMPUTE_KERNEL_TEMPLATE(aie, rte_cast, T,
                        cgsim::KernelReadPort<T> in,
                        cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(static_cast<float>(co_await in.get()) * 2.0f);
  }
}

COMPUTE_KERNEL(hls, rte_offset,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await in.get() + 0.5f);
  }
}

// bilinear_pipeline -- image-processing scenario from the paper's
// evaluation: scale a procedurally generated image with the ported AMD
// Bilinear_Interpolation kernel, then compare the cooperative simulation
// against the cycle-approximate AIE simulation of the same graph.
//
//   $ ./bilinear_pipeline [width] [height]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "aiesim/engine.hpp"
#include "apps/bilinear.hpp"

namespace {

using apps::bilinear::kLanes;
using apps::bilinear::Packet;
using apps::bilinear::V;

/// A small synthetic image (smooth gradient + ripple).
float image_at(int x, int y) {
  return 128.0f + 100.0f * std::sin(0.21f * static_cast<float>(x)) *
                      std::cos(0.13f * static_cast<float>(y));
}

/// Builds the interpolation queries for a 1.5x upscale of a WxH image.
std::vector<Packet> build_queries(int w, int h) {
  std::vector<Packet> packets;
  const int out_w = w * 3 / 2;
  const int out_h = h * 3 / 2;
  Packet cur{};
  unsigned lane = 0;
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const float sx = static_cast<float>(ox) * 2.0f / 3.0f;
      const float sy = static_cast<float>(oy) * 2.0f / 3.0f;
      const int x0 = static_cast<int>(sx);
      const int y0 = static_cast<int>(sy);
      cur.p00.set(lane, image_at(x0, y0));
      cur.p01.set(lane, image_at(x0 + 1, y0));
      cur.p10.set(lane, image_at(x0, y0 + 1));
      cur.p11.set(lane, image_at(x0 + 1, y0 + 1));
      cur.fx.set(lane, sx - static_cast<float>(x0));
      cur.fy.set(lane, sy - static_cast<float>(y0));
      if (++lane == kLanes) {
        packets.push_back(cur);
        cur = Packet{};
        lane = 0;
      }
    }
  }
  if (lane != 0) packets.push_back(cur);
  return packets;
}

}  // namespace

int main(int argc, char** argv) {
  const int w = argc > 1 ? std::atoi(argv[1]) : 64;
  const int h = argc > 2 ? std::atoi(argv[2]) : 48;
  const auto queries = build_queries(w, h);
  std::printf("bilinear_pipeline: upscaling %dx%d -> %zu packets of %u "
              "queries\n",
              w, h, queries.size(), kLanes);

  // Functional simulation on the cooperative cgsim runtime.
  std::vector<V> pixels;
  const auto r = apps::bilinear::graph(queries, pixels);
  std::printf("  cgsim: %zu output vectors, %llu resumes\n", pixels.size(),
              static_cast<unsigned long long>(r.resumes));

  // Sanity: interpolated values stay within the neighbour envelope.
  int violations = 0;
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const auto ref = apps::bilinear::reference(queries[k]);
    for (unsigned i = 0; i < kLanes; ++i) {
      if (std::fabs(pixels[k].get(i) - ref[i]) > 1e-3f) ++violations;
    }
  }
  std::printf("  reference mismatches: %d\n", violations);

  // Cycle-approximate timing of the same graph, hand-optimized vs
  // extracted I/O (the paper's Table 1 comparison for this example).
  std::vector<V> sim_px;
  aiesim::SimConfig native;
  const auto rn = aiesim::simulate(apps::bilinear::graph.view(), native,
                                   queries, sim_px);
  sim_px.clear();
  aiesim::SimConfig generated;
  generated.generated_io = true;
  const auto rg = aiesim::simulate(apps::bilinear::graph.view(), generated,
                                   queries, sim_px);
  const double ns_native = rn.ns_per_iteration(native.aie_mhz, 4);
  const double ns_gen = rg.ns_per_iteration(generated.aie_mhz, 4);
  std::printf("  aiesim: %.1f ns/packet hand-optimized, %.1f ns/packet "
              "extracted (%.1f%% rel. throughput)\n",
              ns_native, ns_gen, 100.0 * ns_native / ns_gen);
  return violations == 0 ? 0 : 1;
}

// extract_demo -- the full paper Figure 5 extraction flow as a runnable
// tool: a prototype application embedding a cgsim graph registers it with
// CGSIM_EXTRACTABLE; running this program converts the prototype into a
// Vitis-compatible AIE project on disk.
//
//   $ ./extract_demo [output-dir]
//   $ ls <output-dir>/demo_graph/
//   aie_kernel_ports.hpp  graph.hpp  kernel_decls.hpp  preproc.cc  ...
#include <cstdio>
#include <vector>

#include "core/cgsim.hpp"
#include "extractor/extractor.hpp"

using namespace cgsim;

// --- the embedded prototype (kernels + helpers + graph) -------------------

/// Gain applied before quantization; co-extracted into the AIE project.
constexpr float kPreGain = 0.5f;

float apply_gain(float v) { return v * kPreGain; }

COMPUTE_KERNEL(aie, preproc,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(apply_gain(co_await in.get()));
  }
}

COMPUTE_KERNEL(aie, quantize,
               KernelReadPort<float> in,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(static_cast<int>(co_await in.get() * 256.0f));
  }
}

COMPUTE_KERNEL(noextract, host_logger,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get());  // stays on the host
  }
}

constexpr auto demo_graph = make_compute_graph_v<[](IoConnector<float> a) {
  a.attr("plio_name", "SamplesIn");
  IoConnector<float> conditioned;
  IoConnector<int> quantized, logged;
  preproc(a, conditioned);
  quantize(conditioned, quantized);
  host_logger(quantized, logged);
  logged.attr("plio_name", "SamplesOut");
  return std::make_tuple(logged);
}>;

CGSIM_EXTRACTABLE(demo_graph);

// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
  // First prove the prototype works, as the paper's workflow prescribes:
  // simulate before extracting (Figure 2).
  std::vector<float> in{1.0f, 2.0f, 4.0f};
  std::vector<int> out;
  demo_graph(in, out);
  std::printf("prototype run: ");
  for (int v : out) std::printf("%d ", v);
  std::printf("\n");

  // Then extract every registered graph into an AIE project.
  cgx::ExtractOptions opts;
  opts.out_dir = argc > 1 ? argv[1] : "cgx_out";
  const auto reports = cgx::extract_all(opts);
  for (const auto& rep : reports) {
    std::printf("extracted graph '%s' -> %s\n", rep.graph_name.c_str(),
                rep.out_dir.c_str());
    std::printf("  kernels: %d aie, %d noextract (excluded)\n",
                rep.aie_kernels, rep.noextract_kernels);
    std::printf("  connections: %d intra-realm, %d inter-realm, %d global\n",
                rep.intra_realm_edges, rep.inter_realm_edges,
                rep.global_edges);
    for (const auto& [name, text] : rep.project.files) {
      std::printf("  wrote %s (%zu bytes)\n", name.c_str(), text.size());
    }
    for (const auto& w : rep.project.warnings) {
      std::printf("  WARNING: %s\n", w.c_str());
    }
  }
  return reports.empty() ? 1 : 0;
}

// gemm_offload -- tiled matrix multiplication on the AIE array (the
// workload class the paper's related work, PyAIE and Vyasa, targets).
// Demonstrates the split-K GEMM app plus two aiesim extensions: kernel
// placement on the 2D tile grid (with stream-switch hop latency) and
// per-tile utilization statistics.
//
//   $ ./gemm_offload [tile-grid-k]
#include <cstdio>
#include <cstdlib>
#include <random>

#include "aiesim/engine.hpp"
#include "apps/gemm.hpp"

using apps::gemm::Tile;
using apps::gemm::TilePair;

namespace {

Tile random_tile(std::mt19937& rng) {
  std::uniform_real_distribution<float> d{-1, 1};
  Tile t;
  for (auto& v : t.m) v = d(rng);
  return t;
}

double max_abs_err(const Tile& got, const Tile& want) {
  double e = 0;
  for (unsigned i = 0; i < apps::gemm::kTile * apps::gemm::kTile; ++i) {
    e = std::max(e, static_cast<double>(std::abs(got.m[i] - want.m[i])));
  }
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const int kdim = argc > 1 ? std::atoi(argv[1]) : 8;  // K tiles (even)
  std::mt19937 rng{97};

  // One output tile accumulated over kdim K-tiles, split across two
  // compute kernels.
  std::vector<TilePair> half0, half1;
  Tile want{};
  for (int k = 0; k < kdim; k += 2) {
    const Tile a0 = random_tile(rng), b0 = random_tile(rng);
    const Tile a1 = random_tile(rng), b1 = random_tile(rng);
    half0.push_back(TilePair{a0, b0});
    half1.push_back(TilePair{a1, b1});
    const Tile p0 = apps::gemm::reference_multiply(a0, b0);
    const Tile p1 = apps::gemm::reference_multiply(a1, b1);
    for (unsigned i = 0; i < apps::gemm::kTile * apps::gemm::kTile; ++i) {
      want.m[i] += p0.m[i] + p1.m[i];
    }
  }

  // Functional run + host-side fold of the streamed partial sums.
  std::vector<Tile> partials;
  apps::gemm::graph(half0, half1, partials);
  Tile got{};
  for (const Tile& p : partials) {
    for (unsigned i = 0; i < apps::gemm::kTile * apps::gemm::kTile; ++i) {
      got.m[i] += p.m[i];
    }
  }
  std::printf("gemm_offload: K=%d tiles, max |error| = %.2e\n", kdim,
              max_abs_err(got, want));

  // Placement sweep on the cycle-approximate simulator: co-locating the
  // two gemm_half producers next to the accumulator vs scattering them
  // across the array.
  struct Case {
    const char* name;
    std::map<std::string, aiesim::TileCoord> placement;
  };
  const Case cases[] = {
      {"clustered ", {{"gemm_half", {0, 0}}, {"gemm_acc", {1, 0}}}},
      {"scattered ", {{"gemm_half", {0, 0}}, {"gemm_acc", {7, 7}}}},
  };
  for (const Case& c : cases) {
    std::vector<Tile> out;
    aiesim::SimConfig cfg;
    cfg.placement = c.placement;
    const auto res =
        aiesim::simulate(apps::gemm::graph.view(), cfg, half0, half1, out);
    std::printf("  placement %s: %8llu cycles (%.2f us @ 1.25 GHz)\n",
                c.name,
                static_cast<unsigned long long>(res.virtual_cycles),
                res.ns_total / 1000.0);
    for (const auto& t : res.tiles) {
      std::printf("    %-12s utilization %5.1f%% (%llu MACs)\n",
                  t.kernel.c_str(),
                  100.0 * t.utilization(res.virtual_cycles),
                  static_cast<unsigned long long>(
                      t.ops[aie::OpClass::vector_mac]));
    }
  }
  return max_abs_err(got, want) < 1e-3 ? 0 : 1;
}

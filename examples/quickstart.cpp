// quickstart -- the paper's running example (Figures 3 and 4): define an
// AIE compute kernel with COMPUTE_KERNEL, build a graph at compile time
// with make_compute_graph_v, and run it against ordinary std::vectors.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/cgsim.hpp"

using namespace cgsim;

// Figure 3: a kernel that reads pairs of values from two input streams,
// computes their sum, and writes the result to an output stream.
COMPUTE_KERNEL(aie,              // Realm (target HW)
               adder_kernel,     // Kernel name
               // I/O ports
               KernelReadPort<float> in1,
               KernelReadPort<float> in2,
               KernelWritePort<float> out) {
  while (true) {
    const float val = (co_await in1.get()) + (co_await in2.get());
    co_await out.put(val);
  }
}

COMPUTE_KERNEL(aie, offset_kernel,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await in.get() + 100.0f);
  }
}

// Figure 4 style: the lambda's parameters are the graph's global inputs,
// the returned connectors its global outputs. The whole graph is built and
// serialized during constant evaluation.
constexpr auto the_graph = make_compute_graph_v<[](
    IoConnector<float> a, IoConnector<float> b) {
  a.attr("plio_name", "DataIn0");
  b.attr("plio_name", "DataIn1");
  IoConnector<float> sum, shifted;
  adder_kernel(a, b, sum);
  offset_kernel(sum, shifted);
  shifted.attr("plio_name", "DataOut0");
  return std::make_tuple(shifted);
}>;

int main() {
  static_assert(the_graph.counts.kernels == 2);
  static_assert(the_graph.counts.edges == 4);

  std::vector<float> lhs{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> rhs{10.0f, 20.0f, 30.0f, 40.0f};
  std::vector<float> result;

  // Invoking the constexpr graph object deserializes it onto the runtime
  // heap and runs the cooperative scheduler to quiescence (Section 3.8).
  const RunResult r = the_graph(lhs, rhs, result);

  std::printf("quickstart: %d kernels completed, %llu coroutine resumes\n",
              r.kernels_completed,
              static_cast<unsigned long long>(r.resumes));
  for (std::size_t i = 0; i < result.size(); ++i) {
    std::printf("  %g + %g + 100 = %g\n", lhs[i], rhs[i], result[i]);
  }

  // The same graph can run with one OS thread per kernel (the execution
  // model of AMD's x86sim):
  std::vector<float> threaded_result;
  the_graph.run(RunOptions{.mode = ExecMode::threaded}, lhs, rhs,
                threaded_result);
  std::printf("threaded run matches: %s\n",
              threaded_result == result ? "yes" : "NO");
  return threaded_result == result ? 0 : 1;
}

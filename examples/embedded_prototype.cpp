// embedded_prototype -- the paper's core workflow promise (Figure 2):
// the compute-graph prototype lives *inside* a running host application
// and stays fully functional while being developed. This example embeds a
// small signal-conditioning graph into an interactive host loop: samples
// arrive one at a time (here: a synthesized sensor), are pushed into the
// graph as they appear, and conditioned outputs are consumed as soon as
// the graph produces them -- no batch boundaries, no separate device
// process, no vendor tools.
//
//   $ ./embedded_prototype [samples]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/cgsim.hpp"

using namespace cgsim;

// Running-average conditioner with a decimating reporter: one output per
// four inputs.
COMPUTE_KERNEL(aie, smooth4,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    float acc = 0.0f;
    for (int i = 0; i < 4; ++i) acc += co_await in.get();
    co_await out.put(acc / 4.0f);
  }
}

COMPUTE_KERNEL(aie, threshold_alarm,
               KernelReadPort<float> in,
               KernelWritePort<int> alarms) {
  int index = 0;
  while (true) {
    const float v = co_await in.get();
    if (v > 0.8f) co_await alarms.put(index);
    ++index;
  }
}

constexpr auto monitor_graph = make_compute_graph_v<[](
    IoConnector<float> samples) {
  IoConnector<float> smoothed;
  IoConnector<int> alarms;
  smooth4(samples, smoothed);
  threshold_alarm(smoothed, alarms);
  return std::make_tuple(alarms);
}>;

namespace {
float read_sensor(int t) {  // synthesized slowly-drifting noisy signal
  return 0.6f * std::sin(0.002f * static_cast<float>(t)) +
         0.4f * std::sin(0.11f * static_cast<float>(t));
}
}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 20000;
  InteractiveSession session{monitor_graph.view()};

  int alarms_seen = 0;
  int last_alarm = -1;
  for (int t = 0; t < samples; ++t) {
    // The host does its own work per iteration and feeds the prototype
    // exactly when data exists -- the embedded development loop.
    while (!session.push<float>(0, read_sensor(t))) {
      // Back-pressure: drain pending alarms, then retry.
      while (auto a = session.poll<int>(0)) {
        ++alarms_seen;
        last_alarm = *a;
      }
    }
    while (auto a = session.poll<int>(0)) {
      ++alarms_seen;
      last_alarm = *a;
    }
  }
  session.finish();
  while (auto a = session.poll<int>(0)) {
    ++alarms_seen;
    last_alarm = *a;
  }

  std::printf("embedded_prototype: %d samples -> %d alarm events "
              "(last at smoothed index %d), %llu coroutine resumes\n",
              samples, alarms_seen, last_alarm,
              static_cast<unsigned long long>(session.resumes()));
  std::printf("graph drained cleanly: %s\n",
              session.drained() ? "yes" : "NO");
  return session.drained() && alarms_seen > 0 ? 0 : 1;
}

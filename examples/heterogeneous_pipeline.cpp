// heterogeneous_pipeline -- exercises the extensions beyond the paper's
// evaluated feature set (its Section 6 future work): a graph spanning the
// AIE array and the programmable logic (hls realm), global-memory I/O
// (GMIO) at the array boundary, a templated kernel instantiated for two
// element types, and DMA corner-turning on the input descriptor.
//
// Running it simulates the graph functionally, prints the Graphviz
// rendering, and extracts both realm projects to disk.
//
//   $ ./heterogeneous_pipeline [output-dir]
#include <array>
#include <cstdio>
#include <vector>

#include "core/cgsim.hpp"
#include "extractor/extractor.hpp"

using namespace cgsim;

// 8x8 int16 tile entering through global memory, transposed by the DMA.
using Tile = std::array<std::int16_t, 64>;

inline constexpr PortSettings gmio_in{.io = IoKind::gmio};

// Templated AIE kernel: converts a tile's elements to the compute type
// (instantiated for float and double below -- paper Section 6 names
// templated kernels as unexposed; cgsim supports them).
COMPUTE_KERNEL_TEMPLATE(aie, widen_tile, T,
                        KernelReadPort<Tile, gmio_in> in,
                        KernelWritePort<T> out) {
  while (true) {
    const Tile t = co_await in.get();
    T acc{};
    for (std::int16_t v : t) acc += static_cast<T>(v);
    co_await out.put(acc / static_cast<T>(t.size()));
  }
}

// HLS-realm kernel: combines the two precision paths on the FPGA fabric.
COMPUTE_KERNEL(hls, combine_means,
               KernelReadPort<float> fast_mean,
               KernelReadPort<double> precise_mean,
               KernelWritePort<double> out) {
  while (true) {
    const float f = co_await fast_mean.get();
    const double d = co_await precise_mean.get();
    co_await out.put((static_cast<double>(f) + d) / 2.0);
  }
}

constexpr auto hetero_graph = make_compute_graph_v<[](
    IoConnector<Tile> tiles) {
  tiles.attr("gmio_name", "TilesIn");
  IoConnector<float> fmean;
  IoConnector<double> dmean, combined;
  widen_tile<float>(tiles, fmean);
  widen_tile<double>(tiles, dmean);  // broadcast of the tile stream
  combine_means(fmean, dmean, combined);
  combined.attr("plio_name", "MeansOut");
  return std::make_tuple(combined);
}>;

CGSIM_EXTRACTABLE(hetero_graph);

int main(int argc, char** argv) {
  static_assert(hetero_graph.counts.kernels == 3);

  // Two tiles: an iota ramp and a constant block.
  std::vector<Tile> tiles(2);
  for (int i = 0; i < 64; ++i) {
    tiles[0][static_cast<std::size_t>(i)] = static_cast<std::int16_t>(i);
    tiles[1][static_cast<std::size_t>(i)] = 100;
  }

  // Simulate with a corner-turning DMA descriptor on the source: the mean
  // is permutation-invariant, so results are unchanged -- which is exactly
  // the property this demo checks.
  std::vector<double> means;
  {
    RuntimeContext ctx{hetero_graph.view()};
    ctx.add_stream_source<Tile>(0, std::span<const Tile>{tiles}, 1,
                                dma::CornerTurn<8, 8>{});
    ctx.add_stream_sink<double>(0, means);
    ctx.run_coop();
  }
  std::printf("heterogeneous_pipeline means:");
  for (double m : means) std::printf(" %.3f", m);
  std::printf("  (expect 31.500 100.000)\n");

  // Graphviz rendering of the flattened graph.
  std::printf("\n%s\n", to_dot(hetero_graph.view()).c_str());

  // Extract: AIE project + HLS project side by side.
  cgx::ExtractOptions opts;
  opts.out_dir = argc > 1 ? argv[1] : "cgx_out_hetero";
  const auto reports = cgx::extract_all(opts);
  for (const auto& rep : reports) {
    if (rep.graph_name != "hetero_graph") continue;
    std::printf("extracted '%s': %d aie kernels, %d hls kernels\n",
                rep.graph_name.c_str(), rep.aie_kernels, rep.hls_kernels);
    for (const auto& [name, text] : rep.project.files) {
      std::printf("  %s (%zu bytes)\n", name.c_str(), text.size());
    }
    for (const auto& w : rep.project.warnings) {
      std::printf("  WARNING: %s\n", w.c_str());
    }
  }
  const bool ok = means.size() == 2 && means[0] == 31.5 && means[1] == 100.0;
  return ok ? 0 : 1;
}

// farrow_dsp -- software-defined-radio scenario: resample a tone with the
// ported two-kernel Farrow fractional-delay filter and verify the delayed
// signal against the scalar model; then compare all three execution
// backends (cooperative, thread-per-kernel, cycle-approximate) on the same
// graph.
//
//   $ ./farrow_dsp [blocks]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "aiesim/engine.hpp"
#include "apps/farrow.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using apps::farrow::kBlockSamples;
using apps::farrow::MuBlock;
using apps::farrow::SampleBlock;

std::vector<SampleBlock> tone_blocks(int blocks) {
  std::vector<SampleBlock> out(static_cast<std::size_t>(blocks));
  int n = 0;
  for (auto& blk : out) {
    for (auto& s : blk.s) {
      s = static_cast<std::int16_t>(
          20000.0 * std::sin(2.0 * M_PI * 0.01 * n++));
    }
  }
  return out;
}

/// A slowly sweeping fractional delay in Q14 (0 .. ~0.9).
std::vector<MuBlock> sweeping_mu(int blocks) {
  std::vector<MuBlock> out(static_cast<std::size_t>(blocks));
  int n = 0;
  for (auto& blk : out) {
    for (auto& m : blk.mu) {
      const double mu = 0.45 * (1.0 + std::sin(2.0 * M_PI * 1e-4 * n++));
      m = static_cast<std::int16_t>(mu * (1 << 14));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 4;
  const auto samples = tone_blocks(blocks);
  const auto mu = sweeping_mu(blocks);
  std::printf("farrow_dsp: %d blocks of %u int16 samples (%u bytes each)\n",
              blocks, kBlockSamples, kBlockSamples * 2);

  // 1. Cooperative cgsim run.
  std::vector<SampleBlock> coop;
  const auto r = apps::farrow::graph(samples, mu, coop);
  std::printf("  cgsim: %zu blocks out, deadlock=%d\n", coop.size(),
              static_cast<int>(r.deadlocked));

  // 2. Bit-exact check against the scalar reference model.
  std::vector<std::int16_t> xs, mus;
  for (const auto& b : samples) xs.insert(xs.end(), b.s.begin(), b.s.end());
  for (const auto& b : mu) mus.insert(mus.end(), b.mu.begin(), b.mu.end());
  const auto ref = apps::farrow::reference(xs, mus);
  long mismatches = 0;
  for (std::size_t b = 0; b < coop.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      if (coop[b].s[i] != ref[b * kBlockSamples + i]) ++mismatches;
    }
  }
  std::printf("  scalar-model mismatches: %ld\n", mismatches);

  // 3. Thread-per-kernel (x86sim model) must agree bit-exactly.
  std::vector<SampleBlock> threaded;
  const auto xr = x86sim::simulate(apps::farrow::graph.view(), 1, samples,
                                   mu, threaded);
  std::printf("  x86sim-model: %zu threads, matches=%s\n", xr.threads_used,
              threaded == coop ? "yes" : "NO");

  // 4. Cycle-approximate timing (hand-optimized vs extracted I/O).
  std::vector<SampleBlock> simout;
  aiesim::SimConfig native;
  const auto rn =
      aiesim::simulate(apps::farrow::graph.view(), native, samples, mu,
                       simout);
  simout.clear();
  aiesim::SimConfig gen;
  gen.generated_io = true;
  const auto rg = aiesim::simulate(apps::farrow::graph.view(), gen, samples,
                                   mu, simout);
  std::printf("  aiesim: %.1f ns/block hand-optimized, %.1f ns/block "
              "extracted (%.1f%% rel. throughput)\n",
              rn.ns_per_iteration(native.aie_mhz),
              rg.ns_per_iteration(gen.aie_mhz),
              100.0 * rn.ns_per_iteration(native.aie_mhz) /
                  rg.ns_per_iteration(gen.aie_mhz));
  for (const auto& t : rn.tiles) {
    std::printf("    tile %-16s busy %8llu cycles (%.1f%% of makespan, "
                "%llu activations)\n",
                t.kernel.c_str(),
                static_cast<unsigned long long>(t.busy_cycles),
                100.0 * t.utilization(rn.virtual_cycles),
                static_cast<unsigned long long>(t.activations));
  }
  return (mismatches == 0 && threaded == coop) ? 0 : 1;
}

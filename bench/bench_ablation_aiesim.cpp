// bench_ablation_aiesim -- ablation of the cycle-approximate engine's fast
// path (timing-wheel queue, dense id tables, block-stepped micro model)
// against the retained reference engine (binary heap, pointer-hashed
// lookups, per-cycle loop).
//
// Runs the paper's four application graphs at (scaled-down) Table-2 cycle
// detail with both EngineVariant::fast and EngineVariant::reference and
// checks two things:
//   * bit-exactness -- makespan, micro-model step checksum, per-task busy
//     cycles and the trace digest must be identical between variants;
//   * speedup -- the fast engine must achieve at least `min-geomean`
//     (default 3x) geometric-mean wall-clock speedup across the four
//     graphs.
// Exits non-zero if either gate fails. Results go to a JSON file so
// successive PRs can track the trajectory.
//
//   $ ./bench_ablation_aiesim [scale-divisor [json-path [min-geomean]]]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "aiesim/engine.hpp"
#include "bench_common.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"

namespace {

int g_divisor = 64;  // fraction of the paper's repetitions to run

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct VariantResult {
  double seconds = 0;
  std::uint64_t makespan = 0;
  std::uint64_t checksum = 0;
  std::uint64_t trace_digest = 0;
  std::vector<std::pair<std::string, std::uint64_t>> busy;  // kernel, cycles
};

struct Row {
  const char* name;
  int reps;
  VariantResult fast;
  VariantResult ref;
  bool identical = false;
  double speedup = 0;
};

template <class Graph, class MakeIo>
Row run_example(const char* name, int paper_reps, const Graph& graph,
                MakeIo make_io) {
  Row row{};
  row.name = name;
  row.reps = std::max(1, paper_reps / g_divisor);
  // Best of three timed runs per variant: single-shot timings of a few
  // milliseconds jitter enough on a loaded single-core host to flip the
  // speedup gate, and the first run additionally pays process warm-up.
  // Observables are checked to be stable across the repeats.
  constexpr int kTimedRuns = 3;
  for (const auto variant :
       {aiesim::EngineVariant::fast, aiesim::EngineVariant::reference}) {
    VariantResult& vr =
        variant == aiesim::EngineVariant::fast ? row.fast : row.ref;
    vr.seconds = 1e100;
    for (int t = 0; t < kTimedRuns; ++t) {
      VariantResult cur;
      const auto t0 = std::chrono::steady_clock::now();
      make_io([&](auto&&... io) {
        aiesim::SimConfig cfg;
        cfg.detail = aiesim::DetailLevel::cycle;
        cfg.engine = variant;
        cfg.repetitions = row.reps;
        const aiesim::SimResult res =
            aiesim::simulate(graph.view(), cfg, io...);
        cur.makespan = res.virtual_cycles;
        cur.checksum = res.step_checksum;
        cur.trace_digest = res.trace.digest();
        for (const aiesim::TileStats& ts : res.tiles) {
          cur.busy.emplace_back(ts.kernel, ts.busy_cycles);
        }
      });
      cur.seconds = seconds_since(t0);
      if (t > 0 && (cur.makespan != vr.makespan ||
                    cur.checksum != vr.checksum ||
                    cur.trace_digest != vr.trace_digest ||
                    cur.busy != vr.busy)) {
        std::fprintf(stderr, "FAIL: %s %s observables differ across runs\n",
                     name,
                     variant == aiesim::EngineVariant::fast ? "fast"
                                                            : "reference");
        std::exit(1);
      }
      cur.seconds = std::min(cur.seconds, vr.seconds);
      vr = std::move(cur);
    }
  }
  row.identical = row.fast.makespan == row.ref.makespan &&
                  row.fast.checksum == row.ref.checksum &&
                  row.fast.trace_digest == row.ref.trace_digest &&
                  row.fast.busy == row.ref.busy;
  row.speedup = row.fast.seconds > 0 ? row.ref.seconds / row.fast.seconds : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  if (argc > 1) g_divisor = std::max(1, std::atoi(argv[1]));
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 2 ? argv[2] : "BENCH_aiesim.json");
  const double min_geomean = argc > 3 ? std::atof(argv[3]) : 3.0;

  // Base workloads sized like bench_table2's per-repetition inputs.
  std::mt19937 rng{7};
  std::uniform_real_distribution<float> df{-100, 100};
  std::uniform_int_distribution<int> di{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};

  std::vector<apps::bitonic::Block> bit_in(512);
  for (auto& b : bit_in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, df(rng));
  }
  std::vector<apps::farrow::SampleBlock> far_in(8);
  std::vector<apps::farrow::MuBlock> far_mu(8);
  for (std::size_t b = 0; b < far_in.size(); ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      far_in[b].s[i] = static_cast<std::int16_t>(di(rng));
      far_mu[b].mu[i] = static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::iir::Block> iir_in(8);
  for (auto& b : iir_in) {
    for (auto& s : b.samples) s = df(rng) / 100.0f;
  }
  std::vector<apps::bilinear::Packet> bil_in(4096);
  for (auto& p : bil_in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, df(rng));
      p.p01.set(i, df(rng));
      p.p10.set(i, df(rng));
      p.p11.set(i, df(rng));
      p.fx.set(i, 0.5f);
      p.fy.set(i, 0.5f);
    }
  }

  std::vector<Row> rows;
  {
    std::vector<apps::bitonic::Block> out;
    rows.push_back(run_example("bitonic", 1024, apps::bitonic::graph,
                               [&](auto run) { out.clear(); run(bit_in, out); }));
  }
  {
    std::vector<apps::farrow::SampleBlock> out;
    rows.push_back(run_example(
        "farrow", 512, apps::farrow::graph,
        [&](auto run) { out.clear(); run(far_in, far_mu, out); }));
  }
  {
    std::vector<apps::iir::Block> out;
    rows.push_back(run_example(
        "IIR", 256, apps::iir::graph,
        [&](auto run) { out.clear(); run(iir_in, 1.0f, out); }));
  }
  {
    std::vector<apps::bilinear::V> out;
    rows.push_back(run_example("bilinear", 64, apps::bilinear::graph,
                               [&](auto run) { out.clear(); run(bil_in, out); }));
  }

  std::printf(
      "\naiesim fast-path ablation (cycle detail, 1/%d of paper reps):\n"
      "EngineVariant::fast vs EngineVariant::reference, bit-exactness\n"
      "checked on makespan / step checksum / per-task busy cycles / trace\n"
      "digest.\n\n",
      g_divisor);
  std::printf("%-10s %6s | %10s %10s %8s | %9s %18s\n", "Graph", "Reps",
              "fast(s)", "ref(s)", "speedup", "identical", "makespan");
  std::printf("%.*s\n", 82,
              "-----------------------------------------------------------"
              "-----------------------");
  bool all_identical = true;
  double log_sum = 0;
  for (const Row& r : rows) {
    std::printf("%-10s %6d | %10.3f %10.3f %7.2fx | %9s %18llu\n", r.name,
                r.reps, r.fast.seconds, r.ref.seconds, r.speedup,
                r.identical ? "yes" : "NO",
                static_cast<unsigned long long>(r.fast.makespan));
    all_identical = all_identical && r.identical;
    log_sum += std::log(std::max(r.speedup, 1e-9));
  }
  const double geomean = std::exp(log_sum / static_cast<double>(rows.size()));
  const bool speed_ok = geomean >= min_geomean;
  std::printf("\ngeomean speedup: %.2fx (gate: >= %.2fx) %s\n", geomean,
              min_geomean, speed_ok ? "PASS" : "FAIL");
  std::printf("bit-exactness: %s\n", all_identical ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_aiesim\",\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": %s,\n"
                 "  \"simd_backend\": \"%s\",\n"
                 "  \"scale_divisor\": %d,\n"
                 "  \"min_geomean\": %.2f,\n"
                 "  \"geomean_speedup\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"rows\": [\n",
                 std::thread::hardware_concurrency(),
                 min_geomean >= 3.0 ? "true" : "false",
                 aie::simd::backend::name, g_divisor, min_geomean, geomean,
                 all_identical ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"graph\": \"%s\", \"reps\": %d, \"fast_s\": %.4f, "
          "\"reference_s\": %.4f, \"speedup\": %.3f, \"identical\": %s, "
          "\"makespan\": %llu, \"checksum\": %llu}%s\n",
          r.name, r.reps, r.fast.seconds, r.ref.seconds, r.speedup,
          r.identical ? "true" : "false",
          static_cast<unsigned long long>(r.fast.makespan),
          static_cast<unsigned long long>(r.fast.checksum),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return all_identical && speed_ok ? 0 : 1;
}

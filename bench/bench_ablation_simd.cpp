// bench_ablation_simd -- ablation of the AIE emulation execution backend
// (scalar per-lane loops vs the vector-extension SIMD backend, see
// src/aie/simd.hpp) crossed with instrumentation (no counter attached vs a
// per-activation ScopedCounterBatch), on the inner loops of the four paper
// app kernels: bilinear interpolate, bitonic sort16, the Farrow
// branch-filter + combine pair, and the IIR feed-forward taps.
//
// Besides the google-benchmark suites, the binary runs the fixed 4x4
// ablation and writes the results to a machine-readable JSON file so
// successive PRs can track the trajectory:
//
//   bench_ablation_simd [BENCH_simd.json [iters [min_speedup]]]
//
// Exit code is non-zero when the uninstrumented SIMD-over-scalar geomean
// across the four kernels falls below `min_speedup` (default 3.0; the
// bench_smoke ctest entry relaxes the bar for its tiny workload), or when
// any kernel's outputs differ between backends (they must be bit-exact).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <cstring>
#include <string>
#include <vector>

#include "aie/aie.hpp"
#include "bench_common.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"

namespace {

using Scalar = aie::simd::scalar_backend;
using Native = aie::simd::native_backend;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over raw bytes: cheap, order-sensitive digest for the bit-exact
/// cross-backend output comparison.
std::uint64_t fnv1a(const void* p, std::size_t n, std::uint64_t h) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// One measured kernel run: seconds for `iters` blocks plus an output
/// digest. `counter` != nullptr attaches a per-block ScopedCounterBatch,
/// mirroring the per-activation instrumentation of the simulation engine.
struct RunResult {
  double seconds = 0;
  std::uint64_t digest = 0;
};

// ---- bilinear: 64 packets (one kernel activation's batch) per block ----

template <class B>
RunResult run_bilinear(std::size_t iters, aie::OpCounter* counter,
                       bool want_digest) {
  constexpr std::size_t kBatch = 64;
  std::array<apps::bilinear::Packet, kBatch> q{};
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (unsigned l = 0; l < apps::bilinear::kLanes; ++l) {
      const float base = static_cast<float>(i * 8 + l);
      q[i].p00.set(l, base);
      q[i].p01.set(l, base + 1.5f);
      q[i].p10.set(l, base - 0.25f);
      q[i].p11.set(l, base + 3.0f);
      q[i].fx.set(l, static_cast<float>((i + l) % 7) / 7.0f);
      q[i].fy.set(l, static_cast<float>((i + 3 * l) % 5) / 5.0f);
    }
  }
  RunResult res;
  // Escape the inputs: paired with the memory clobber in the in-loop
  // DoNotOptimize, this stops the compiler from hoisting the (otherwise
  // loop-invariant) kernel computation out of the timed loop.
  benchmark::DoNotOptimize(q.data());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    for (std::size_t i = 0; i < kBatch; ++i) {
      auto r = apps::bilinear::interpolate<B>(q[i]);
      if (want_digest) {
        res.digest =
            fnv1a(r.data().data(), sizeof(float) * r.size(), res.digest);
      } else {
        benchmark::DoNotOptimize(r);
      }
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---- bitonic: 64 sorts of 16 floats per block ----

template <class B>
RunResult run_bitonic(std::size_t iters, aie::OpCounter* counter,
                      bool want_digest) {
  constexpr std::size_t kBatch = 64;
  std::array<apps::bitonic::Block, kBatch> blocks{};
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (unsigned l = 0; l < 16; ++l) {
      blocks[i].set(l, static_cast<float>((l * 2654435761u + i * 97) % 1024) -
                           512.0f);
    }
  }
  RunResult res;
  // Escape the inputs: paired with the memory clobber in the in-loop
  // DoNotOptimize, this stops the compiler from hoisting the (otherwise
  // loop-invariant) kernel computation out of the timed loop.
  benchmark::DoNotOptimize(blocks.data());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    for (std::size_t i = 0; i < kBatch; ++i) {
      auto r = apps::bitonic::sort16<B>(blocks[i]);
      if (want_digest) {
        res.digest =
            fnv1a(r.data().data(), sizeof(float) * r.size(), res.digest);
      } else {
        benchmark::DoNotOptimize(r);
      }
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---- farrow: one 2048-sample window (branch filters + combine) ----

template <class B>
RunResult run_farrow(std::size_t iters, aie::OpCounter* counter,
                     bool want_digest) {
  apps::farrow::SampleBlock in{};
  apps::farrow::MuBlock mu{};
  for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
    in.s[i] = static_cast<std::int16_t>((i * 193) % 4001 - 2000);
    mu.mu[i] = static_cast<std::int16_t>((i * 37) % 16384);
  }
  RunResult res;
  apps::farrow::BranchState st{};
  // Escape the inputs: paired with the memory clobber in the in-loop
  // DoNotOptimize, this stops the compiler from hoisting the (otherwise
  // loop-invariant) kernel computation out of the timed loop.
  benchmark::DoNotOptimize(in.s.data());
  benchmark::DoNotOptimize(mu.mu.data());
  benchmark::DoNotOptimize(&st);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    const auto br = apps::farrow::branch_filters<B>(in, st);
    auto out = apps::farrow::combine<B>(br, mu);
    if (want_digest) {
      res.digest = fnv1a(out.s.data(), sizeof(out.s), res.digest);
    } else {
      benchmark::DoNotOptimize(out);
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---- iir: one 2048-sample window of feed-forward taps ----

template <class B>
RunResult run_iir(std::size_t iters, aie::OpCounter* counter,
                  bool want_digest) {
  apps::iir::Block in{};
  for (unsigned i = 0; i < apps::iir::kBlockSamples; ++i) {
    in.samples[i] = std::sin(0.01f * static_cast<float>(i)) * 100.0f;
  }
  RunResult res;
  apps::iir::State st{};
  // Escape the inputs: paired with the memory clobber in the in-loop
  // DoNotOptimize, this stops the compiler from hoisting the (otherwise
  // loop-invariant) kernel computation out of the timed loop.
  benchmark::DoNotOptimize(in.samples.data());
  benchmark::DoNotOptimize(&st);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    auto fir = apps::iir::feed_forward<B>(in, st, apps::iir::kDefaultCoeffs);
    if (want_digest) {
      res.digest = fnv1a(fir.data(), sizeof(float) * fir.size(), res.digest);
    } else {
      benchmark::DoNotOptimize(fir);
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---------------------------------------------------------------------------
// google-benchmark suites (filterable; the smoke test runs one of these).
// ---------------------------------------------------------------------------

void BM_BilinearScalar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bilinear<Scalar>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_BilinearScalar);

void BM_BilinearNative(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bilinear<Native>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_BilinearNative);

void BM_FarrowScalar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_farrow<Scalar>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_FarrowScalar);

void BM_FarrowNative(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_farrow<Native>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_FarrowNative);

// ---------------------------------------------------------------------------
// Fixed ablation with JSON output (tracked across PRs).
// ---------------------------------------------------------------------------

struct KernelRow {
  const char* name;
  RunResult (*scalar_run)(std::size_t, aie::OpCounter*, bool);
  RunResult (*native_run)(std::size_t, aie::OpCounter*, bool);
  double scalar_uninst = 0, native_uninst = 0;
  double scalar_inst = 0, native_inst = 0;
  std::uint64_t scalar_ops = 0, native_ops = 0;
};

int run_ablation(const std::string& json_path, std::size_t iters,
                 double min_speedup) {
  std::array<KernelRow, 4> rows{{
      {"bilinear", &run_bilinear<Scalar>, &run_bilinear<Native>},
      {"bitonic", &run_bitonic<Scalar>, &run_bitonic<Native>},
      {"farrow", &run_farrow<Scalar>, &run_farrow<Native>},
      {"iir", &run_iir<Scalar>, &run_iir<Native>},
  }};

  int failures = 0;
  for (auto& row : rows) {
    // Warm-up + bit-exactness / op-count-identity check in one pass.
    aie::OpCounter cs{}, cn{};
    const auto ws = row.scalar_run(iters / 8 + 1, &cs, true);
    const auto wn = row.native_run(iters / 8 + 1, &cn, true);
    if (ws.digest != wn.digest) {
      std::fprintf(stderr, "FAIL: %s outputs differ between backends\n",
                   row.name);
      ++failures;
    }
    if (!(cs.counts == cn.counts)) {
      std::fprintf(stderr, "FAIL: %s OpCounts differ between backends\n",
                   row.name);
      ++failures;
    }
    row.scalar_ops = cs.counts.total();
    row.native_ops = cn.counts.total();

    // Best-of-R timing: single-core CI containers are noisy, and a single
    // sample per configuration can swing a ratio by 2x. The minimum over a
    // few repeats estimates the undisturbed cost of each configuration.
    constexpr int kRepeats = 5;
    const auto best =
        [iters](RunResult (*fn)(std::size_t, aie::OpCounter*, bool),
                aie::OpCounter* c) {
          double m = fn(iters, c, false).seconds;
          for (int r = 1; r < kRepeats; ++r)
            m = std::min(m, fn(iters, c, false).seconds);
          return m;
        };
    row.scalar_uninst = best(row.scalar_run, nullptr);
    row.native_uninst = best(row.native_run, nullptr);
    aie::OpCounter tmp{};
    row.scalar_inst = best(row.scalar_run, &tmp);
    row.native_inst = best(row.native_run, &tmp);
  }

  double log_sum_uninst = 0, log_sum_inst = 0;
  std::printf("\n-- SIMD backend ablation (%zu blocks/kernel) --\n", iters);
  std::printf("%-10s %12s %12s %9s %9s %10s\n", "kernel", "scalar_s",
              "native_s", "speedup", "inst_spd", "inst_ovhd");
  for (const auto& row : rows) {
    const double spd_uninst = row.scalar_uninst / row.native_uninst;
    const double spd_inst = row.scalar_inst / row.native_inst;
    const double ovhd = row.native_inst / row.native_uninst - 1.0;
    log_sum_uninst += std::log(spd_uninst);
    log_sum_inst += std::log(spd_inst);
    std::printf("%-10s %12.6f %12.6f %8.2fx %8.2fx %9.1f%%\n", row.name,
                row.scalar_uninst, row.native_uninst, spd_uninst, spd_inst,
                100.0 * ovhd);
  }
  const double geomean_uninst = std::exp(log_sum_uninst / rows.size());
  const double geomean_inst = std::exp(log_sum_inst / rows.size());
  std::printf("geomean speedup: %.2fx uninstrumented (required >= %.2fx), "
              "%.2fx instrumented\n",
              geomean_uninst, min_speedup, geomean_inst);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_simd\",\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": %s,\n"
                 "  \"default_backend\": \"%s\",\n"
                 "  \"iters\": %zu,\n"
                 "  \"rows\": [\n",
                 std::thread::hardware_concurrency(),
                 min_speedup >= 3.0 ? "true" : "false",
                 aie::simd::backend::name, iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    {\"kernel\": \"%s\",\n"
          "     \"scalar_uninstrumented_s\": %.6f,\n"
          "     \"native_uninstrumented_s\": %.6f,\n"
          "     \"scalar_instrumented_s\": %.6f,\n"
          "     \"native_instrumented_s\": %.6f,\n"
          "     \"speedup_uninstrumented\": %.3f,\n"
          "     \"speedup_instrumented\": %.3f,\n"
          "     \"instrumentation_overhead_native\": %.3f,\n"
          "     \"ops_recorded\": %llu}%s\n",
          row.name, row.scalar_uninst, row.native_uninst, row.scalar_inst,
          row.native_inst, row.scalar_uninst / row.native_uninst,
          row.scalar_inst / row.native_inst,
          row.native_inst / row.native_uninst - 1.0,
          static_cast<unsigned long long>(row.native_ops),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"geomean_speedup_uninstrumented\": %.3f,\n"
                 "  \"geomean_speedup_instrumented\": %.3f,\n"
                 "  \"min_speedup_bar\": %.3f\n"
                 "}\n",
                 geomean_uninst, geomean_inst, min_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (geomean_uninst < min_speedup) {
    std::printf("FAIL: geomean speedup %.2fx below the %.2fx bar\n",
                geomean_uninst, min_speedup);
    ++failures;
  }
  if (failures == 0) std::printf("PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 1 ? argv[1] : "BENCH_simd.json");
  std::size_t iters = 400;  // blocks per kernel+config: ~seconds total
  if (argc > 2) iters = static_cast<std::size_t>(std::stoull(argv[2]));
  if (iters == 0) iters = 1;
  double min_speedup = 3.0;
  if (argc > 3) min_speedup = std::stod(argv[3]);
  return run_ablation(json_path, iters, min_speedup);
}

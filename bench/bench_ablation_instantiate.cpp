// bench_ablation_instantiate -- cost of runtime graph instantiation
// (paper Section 3.6 deserialization) as a function of graph size, and the
// end-to-end overhead of one full run on tiny inputs. This quantifies the
// price of cgsim's compile-time-construction + runtime-deserialization
// split compared to a hypothetical direct construction.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, bi_stage,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

constexpr auto chain1 = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> x1;
  bi_stage(a, x1);
  return std::make_tuple(x1);
}>;

constexpr auto chain4 = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> x1, x2, x3, x4;
  bi_stage(a, x1);
  bi_stage(x1, x2);
  bi_stage(x2, x3);
  bi_stage(x3, x4);
  return std::make_tuple(x4);
}>;

constexpr auto chain16 = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> x[16];
  bi_stage(a, x[0]);
  for (int i = 1; i < 16; ++i) bi_stage(x[i - 1], x[i]);
  return std::make_tuple(x[15]);
}>;

void BM_Instantiate(benchmark::State& state, const GraphView& g) {
  for (auto _ : state) {
    RuntimeContext ctx{g};
    benchmark::DoNotOptimize(ctx.tasks().size());
  }
  state.counters["kernels"] = static_cast<double>(g.kernels.size());
}
BENCHMARK_CAPTURE(BM_Instantiate, chain1, chain1.view());
BENCHMARK_CAPTURE(BM_Instantiate, chain4, chain4.view());
BENCHMARK_CAPTURE(BM_Instantiate, chain16, chain16.view());

void BM_FullTinyRun(benchmark::State& state, const GraphView& g) {
  std::vector<int> in{1, 2, 3, 4};
  for (auto _ : state) {
    std::vector<int> out;
    run_graph(g, RunOptions{}, in, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK_CAPTURE(BM_FullTinyRun, chain1, chain1.view());
BENCHMARK_CAPTURE(BM_FullTinyRun, chain16, chain16.view());

#include "core/dynamic_graph.hpp"

/// Ablation: building the same 16-stage chain dynamically at run time (the
/// Graphtoy model, paper Section 3.1) vs deserializing the compile-time
/// graph (BM_Instantiate/chain16).
void BM_DynamicBuild16(benchmark::State& state) {
  for (auto _ : state) {
    cgsim::rt::DynamicGraphBuilder b;
    int prev = b.add_edge<int>();
    b.add_input(prev);
    for (int i = 0; i < 16; ++i) {
      const int next = b.add_edge<int>();
      b.add_kernel(bi_stage, {prev, next});
      prev = next;
    }
    b.add_output(prev);
    RuntimeContext ctx{b.view()};
    benchmark::DoNotOptimize(ctx.tasks().size());
  }
}
BENCHMARK(BM_DynamicBuild16);

void BM_SteadyStateThroughput(benchmark::State& state) {
  std::vector<int> in(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<int> out;
    run_graph(chain4.view(), RunOptions{}, in, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteadyStateThroughput)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

// bench_shm -- zero-copy data-plane and persistent compiled-store ablation.
//
// Three phases:
//
//   * transfer -- one SocketChannel<int> pair over a socketpair moves N MiB
//                 twice: once plain, once with a shared-memory plane
//                 attached (payloads ride the SPSC ring, only the
//                 announcements cross the socket). Gate: the shm path must
//                 move >= `min-shm` (default 2x) more bytes per second for
//                 the >= 1 MiB batches this phase uses.
//
//   * bind     -- restart-to-first-bind latency for CompiledGraph
//                 artifacts on 128/512/1024-kernel chains with every
//                 kernel pinned by an explicit placement directive. Both
//                 sides model a daemon restarted with --cache-dir and the
//                 in-memory cache empty: "compile" binds against an empty
//                 store (compile + persist the artifact), "load" binds
//                 against the warm store (mmap + checksum + in-place
//                 fixup). Gate: the warm path must be >= `min-bind`
//                 (default 3x) faster at the largest size.
//
//   * service  -- digest identity end to end: the same sim-mode session run
//                 through a shm-negotiated client and a socket-only client
//                 must produce bit-identical output digests; a second
//                 daemon over the same --cache-dir (in-memory cache
//                 cleared = a restart) must serve the first request from
//                 the persisted artifact. Unconditional.
//
// Both gates apply only on hosts with >= 4 hardware threads and a
// positive bar (gate_enforced records whether they did).
//
//   $ ./bench_shm [mib [json [min-shm [min-bind]]]] [--out dir]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "aiesim/compiled.hpp"
#include "aiesim/compiled_store.hpp"
#include "bench_common.hpp"
#include "net/shm_ring.hpp"
#include "net/socket.hpp"
#include "net/socket_channel.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/graph_codec.hpp"
#include "service/kernels.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::service;

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- phase 1: raw channel transfer ----------------------------------------

struct TransferResult {
  double seconds = 0.0;
  std::uint64_t shm_bytes = 0;  ///< bytes that actually took the ring
  bool ok = false;
};

/// Moves `total` ints producer -> consumer in 256 KiB batches and checks
/// the received stream byte-for-byte.
TransferResult run_transfer(bool use_shm, std::size_t total) {
  auto [a, b] = net::socket_pair();
  net::SocketChannelOptions opts;
  net::SocketChannel<int> tx{0, std::move(a), nullptr, opts};
  net::SocketChannel<int> rx{1, std::move(b), nullptr, opts};
  tx.set_producers(1);
  rx.set_producers(1);

  net::ShmPlane plane;
  net::ShmPlane peer;
  if (use_shm) {
    // Ring capacity above the credit window: announced bytes always fit.
    plane = net::ShmPlane::create_anon(8 << 20);
    peer = plane.peer_view();
    tx.attach_shm(plane.tx(), plane.rx());
    rx.attach_shm(peer.tx(), peer.rx());
  }

  std::vector<int> src(total);
  std::iota(src.begin(), src.end(), 1);

  const auto t0 = Clock::now();
  std::thread producer{[&] {
    constexpr std::size_t kBatch = 256 << 10;  // ints per try_push_n
    std::size_t done = 0;
    while (done < total) {
      ChanStatus st{};
      done += tx.try_push_n(src.data() + done,
                            std::min(kBatch, total - done), st);
      tx.flush();
      if (done < total) tx.pump();
    }
    tx.producer_done();
  }};

  std::vector<int> buf(64 << 10);
  std::size_t got = 0;
  std::uint64_t sum = 0;
  bool order_ok = true;
  for (;;) {
    ChanStatus st{};
    const std::size_t k = rx.try_pop_n(0, buf.data(), buf.size(), st);
    for (std::size_t i = 0; i < k; ++i) {
      order_ok &= buf[i] == static_cast<int>(got + i + 1);
      sum += static_cast<std::uint64_t>(buf[i]);
    }
    got += k;
    if (k == 0) {
      if (st == ChanStatus::closed) break;
      rx.pump();
    }
  }
  producer.join();
  const double dt = secs_since(t0);

  TransferResult r;
  r.seconds = dt;
  r.shm_bytes = rx.shm_rx_bytes();
  const std::uint64_t n64 = total;
  r.ok = got == total && order_ok && sum == n64 * (n64 + 1) / 2;
  return r;
}

// --- phase 2: compile vs persisted-store bind -----------------------------

/// K-kernel inc-chain spec (distinct serialized bytes per K).
GraphSpec chain_spec(int kernels) {
  GraphSpec g;
  for (int e = 0; e <= kernels; ++e) g.edges.push_back({"i32", 64, {}});
  for (int k = 0; k < kernels; ++k) {
    g.kernels.push_back({"svc_inc_i32", {k, k + 1}});
  }
  g.inputs = {0};
  g.outputs = {kernels};
  return g;
}

struct BindResult {
  double compile_us = 0.0;
  double load_us = 0.0;
  bool loaded_from_store = false;
};

/// Median restart-to-first-bind latency for one chain size, cold disk
/// cache vs warm. Every kernel instance gets an explicit placement
/// directive (the name-resolution work the artifact exists to cache);
/// the in-memory cache is cleared before every measurement, so both
/// sides are exactly the restarted-daemon first-request path -- the
/// cold one compiles and persists, the warm one binds the mmap'd file.
BindResult measure_bind(int kernels, const std::string& store_dir,
                        int reps) {
  rt::DynamicGraphBuilder builder;
  build_graph(chain_spec(kernels), builder);
  const GraphView g = builder.view();
  const aiesim::CostModel cost{};
  std::map<std::string, aiesim::TileCoord> place;
  for (std::size_t k = 0; k < g.kernels.size(); ++k) {
    place.emplace(std::string{g.kernels[k].name},
                  aiesim::TileCoord{static_cast<int>(k) % 8,
                                    static_cast<int>(k) / 8});
  }
  auto& cache = aiesim::CompiledGraphCache::instance();
  auto store =
      std::make_shared<aiesim::CompiledStore>(store_dir, 256u << 20, 256);

  std::vector<double> compile_us, load_us;
  bool loaded = true;
  cache.set_store(store);
  for (int r = 0; r < reps; ++r) {
    cache.clear();   // simulated restart: empty memory...
    store->clear();  // ...and a cold disk cache: compile, then persist
    const auto t0 = Clock::now();
    auto cold = cache.get_or_compile(g, cost, false, place, 8);
    compile_us.push_back(secs_since(t0) * 1e6);
    loaded &= !cold->from_store;
  }
  (void)cache.get_or_compile(g, cost, false, place, 8);  // ensure persisted
  for (int r = 0; r < reps; ++r) {
    cache.clear();  // simulated restart: empty memory, warm disk
    const auto t0 = Clock::now();
    auto warm = cache.get_or_compile(g, cost, false, place, 8);
    load_us.push_back(secs_since(t0) * 1e6);
    loaded &= warm->from_store;
  }
  cache.set_store(nullptr);
  cache.clear();

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  return BindResult{median(compile_us), median(load_us), loaded};
}

// --- phase 3: service digest identity -------------------------------------

std::uint64_t run_service_once(std::uint16_t port, bool use_shm,
                               const GraphSpec& spec,
                               const std::vector<int>& input, bool& ok,
                               bool& shm_used, bool& persisted) {
  ServiceClientOptions copts;
  copts.use_shm = use_shm;
  ServiceClient cli{net::connect_tcp_loopback(port), copts};
  shm_used = cli.shm_active();
  const auto sid = cli.open(RunMode::sim, spec);
  cli.send_input(sid, 0, input.data(), input.size() * sizeof(int));
  RunOutcome out = cli.run(sid);
  ok = out.ok;
  persisted = out.result.persisted;
  cli.close_session(sid);
  return out.result.digest;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const std::size_t mib =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 64;
  const std::string json_path =
      benchutil::join_out(out_dir, argc > 2 ? argv[2] : "BENCH_shm.json");
  const double min_shm = argc > 3 ? std::atof(argv[3]) : 2.0;
  const double min_bind = argc > 4 ? std::atof(argv[4]) : 3.0;

  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_enforced = hw >= 4 && min_shm > 0.0 && min_bind > 0.0;

  register_builtin_kernels();
  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("cgsim-bench-shm-" + std::to_string(::getpid())))
          .string();

  // --- phase 1 ------------------------------------------------------------
  const std::size_t total_ints = mib * (1 << 20) / sizeof(int);
  (void)run_transfer(false, std::min<std::size_t>(total_ints, 1 << 18));
  const TransferResult sock = run_transfer(false, total_ints);
  const TransferResult shm = run_transfer(true, total_ints);
  const double mibf = static_cast<double>(mib);
  const double sock_mib_s = sock.seconds > 0 ? mibf / sock.seconds : 0.0;
  const double shm_mib_s = shm.seconds > 0 ? mibf / shm.seconds : 0.0;
  const double shm_speedup = sock_mib_s > 0 ? shm_mib_s / sock_mib_s : 0.0;
  const bool transfer_ok =
      sock.ok && shm.ok && shm.shm_bytes >= (mib << 20) / 2;

  // --- phase 2 ------------------------------------------------------------
  const int kSizes[] = {128, 512, 1024};
  BindResult binds[3];
  bool bind_ok = true;
  for (int i = 0; i < 3; ++i) {
    binds[i] = measure_bind(kSizes[i], scratch + "/store", 5);
    bind_ok &= binds[i].loaded_from_store;
  }
  const double bind_speedup =
      binds[2].load_us > 0 ? binds[2].compile_us / binds[2].load_us : 0.0;

  // --- phase 3 ------------------------------------------------------------
  GraphSpec spec = chain_spec(16);
  std::vector<int> input(256 << 10 >> 2);  // 256 KiB
  std::iota(input.begin(), input.end(), 7);
  bool svc_ok = true, shm_used = false, sock_shm_used = true;
  bool persisted1 = false, persisted2 = false;
  std::uint64_t d_shm = 0, d_sock = 0, d_restart = 0;
  aiesim::CompiledGraphCache::instance().clear();
  {
    DaemonConfig dc;
    dc.cache_dir = scratch + "/daemon-cache";
    std::uint16_t port = 0;
    Daemon daemon{net::listen_tcp_loopback(0, &port), dc};
    bool ok1 = false, ok2 = false;
    d_shm = run_service_once(port, true, spec, input, ok1, shm_used,
                             persisted1);
    d_sock = run_service_once(port, false, spec, input, ok2, sock_shm_used,
                              persisted1);
    svc_ok = ok1 && ok2 && shm_used && !sock_shm_used && d_shm == d_sock;
    daemon.stop();
  }
  aiesim::CompiledGraphCache::instance().clear();  // "restart"
  {
    DaemonConfig dc;
    dc.cache_dir = scratch + "/daemon-cache";
    std::uint16_t port = 0;
    Daemon daemon{net::listen_tcp_loopback(0, &port), dc};
    bool ok3 = false;
    bool unused = false;
    d_restart =
        run_service_once(port, false, spec, input, ok3, unused, persisted2);
    svc_ok &= ok3 && d_restart == d_shm && persisted2;
    daemon.stop();
  }
  aiesim::CompiledGraphCache::instance().set_store(nullptr);
  aiesim::CompiledGraphCache::instance().clear();
  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);

  const bool shm_gate_ok = !gate_enforced || shm_speedup >= min_shm;
  const bool bind_gate_ok = !gate_enforced || bind_speedup >= min_bind;

  std::printf("transfer: socket %.0f MiB/s, shm %.0f MiB/s (%.2fx, "
              "%llu ring bytes)\n",
              sock_mib_s, shm_mib_s, shm_speedup,
              static_cast<unsigned long long>(shm.shm_bytes));
  for (int i = 0; i < 3; ++i) {
    std::printf("bind %d kernels: cold compile+persist %.0f us, warm store "
                "load %.0f us (%.2fx)\n",
                kSizes[i], binds[i].compile_us, binds[i].load_us,
                binds[i].load_us > 0
                    ? binds[i].compile_us / binds[i].load_us
                    : 0.0);
  }
  std::printf("correctness: transfer %s, store %s, service digests %s\n",
              transfer_ok ? "PASS" : "FAIL", bind_ok ? "PASS" : "FAIL",
              svc_ok ? "PASS" : "FAIL");
  if (gate_enforced) {
    std::printf("shm gate (>= %.2fx): %s\nbind gate (>= %.2fx): %s\n",
                min_shm, shm_gate_ok ? "PASS" : "FAIL", min_bind,
                bind_gate_ok ? "PASS" : "FAIL");
  } else {
    std::printf("gates skipped (hw_threads=%u < 4 or relaxed bars)\n", hw);
  }

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(
        f,
        "  \"bench\": \"bench_shm\",\n"
        "  \"hw_threads\": %u,\n"
        "  \"gate_enforced\": %s,\n"
        "  \"payload_mib\": %zu,\n"
        "  \"socket_mib_s\": %.1f,\n"
        "  \"shm_mib_s\": %.1f,\n"
        "  \"shm_speedup\": %.3f,\n"
        "  \"min_shm_speedup\": %.2f,\n"
        "  \"shm_ring_bytes_moved\": %llu,\n"
        "  \"bind_kernels\": [%d, %d, %d],\n"
        "  \"cold_bind_us\": [%.1f, %.1f, %.1f],\n"
        "  \"warm_bind_us\": [%.1f, %.1f, %.1f],\n"
        "  \"bind_speedup\": %.3f,\n"
        "  \"min_bind_speedup\": %.2f,\n"
        "  \"transfer_ok\": %s,\n"
        "  \"store_ok\": %s,\n"
        "  \"digest_identical\": %s\n"
        "}\n",
        hw, gate_enforced ? "true" : "false", mib, sock_mib_s, shm_mib_s,
        shm_speedup, min_shm,
        static_cast<unsigned long long>(shm.shm_bytes), kSizes[0], kSizes[1],
        kSizes[2], binds[0].compile_us, binds[1].compile_us,
        binds[2].compile_us, binds[0].load_us, binds[1].load_us,
        binds[2].load_us, bind_speedup, min_bind,
        transfer_ok ? "true" : "false", bind_ok ? "true" : "false",
        svc_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return transfer_ok && bind_ok && svc_ok && shm_gate_ok && bind_gate_ok
             ? 0
             : 1;
}

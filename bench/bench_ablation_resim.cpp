// bench_ablation_resim -- ablation of the graph-compilation layer and the
// incremental cone re-simulation (ResimSession) against cold full runs.
//
// Two workloads, two gates:
//   * warm rerun -- the same graph re-invoked repeatedly with unchanged
//     inputs (the null iteration of a parameter-sweep driver, a host
//     re-querying a prototype). Cold path: compiled-graph cache cleared +
//     a fresh simulate() per iteration (context construction, channel
//     allocation, cost-table derivation, full execution every time). Warm
//     path: one ResimSession, resimulate() with an empty dirty set per
//     iteration -- the cone analysis proves nothing changed and the
//     session serves the memoized baseline, refilling the caller's
//     outputs from the edge taps. Gate: >= `min-warm` (default 3x)
//     geometric-mean speedup across chain sizes. A forced full
//     re-execution on the warm session (run() per iteration, dominated by
//     scheduler work both sides) is reported as `warm_full` rows,
//     ungated.
//   * RTP sweep -- a wide graph of independent chains where only one chain
//     depends on the runtime parameter being swept. Full path: simulate()
//     per sweep point (warm compile cache -- the honest alternative a
//     caller has). Incremental path: resimulate() per point, re-executing
//     only the affected chain and splicing the rest from the baseline.
//     Gate: >= `min-resim` (default 10x) speedup.
//
// Correctness is enforced unconditionally (exit 1), timing gates take the
// thresholds from argv so the ctest smoke run can relax them: every timed
// run's trace digest and outputs must equal a cold EngineVariant::reference
// run, and the sweep must actually execute incrementally with the expected
// cone size.
//
//   $ ./bench_ablation_resim [iters [json-path [min-warm [min-resim]]]]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aiesim/compiled.hpp"
#include "bench_common.hpp"
#include "aiesim/engine.hpp"
#include "aiesim/resim.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"

namespace {

using namespace cgsim;

inline constexpr PortSettings rb_rtp{.rtp = true};

COMPUTE_KERNEL(aie, rb_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

// Distinct handle for the swept chain: the splice separates cone records
// from skipped records by kernel name.
COMPUTE_KERNEL(aie, rb_cone_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, rb_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, rb_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// in -> rb_inc^depth -> out.
void build_chain(rt::DynamicGraphBuilder& b, int depth) {
  int prev = b.add_edge<int>();
  b.add_input(prev);
  for (int i = 0; i < depth; ++i) {
    const int next = b.add_edge<int>();
    b.add_kernel(rb_inc, {prev, next});
    prev = next;
  }
  b.add_output(prev);
}

struct Row {
  std::string phase;
  int size = 0;          ///< kernels (warm) / chains (sweep)
  double cold_s = 0;     ///< cold / full path
  double warm_s = 0;     ///< warm / incremental path
  double speedup = 0;
};

bool g_digest_ok = true;

/// Part A: repeated same-graph runs, cold construction vs warm session.
/// Pushes a gated `warm_rerun` row (unchanged-input rerun served by the
/// session) and an ungated `warm_full` row (forced full re-execution on
/// the warm session, for the honest lower bound).
void bench_warm_rerun(int depth, int iters, std::vector<Row>& rows) {
  rt::DynamicGraphBuilder b;
  build_chain(b, depth);
  const GraphView view = b.view();
  const std::vector<int> in{1, 2, 3, 4, 5, 6, 7, 8};
  aiesim::SimConfig cfg;

  std::vector<int> out_ref;
  aiesim::SimConfig ref = cfg;
  ref.engine = aiesim::EngineVariant::reference;
  const auto rr = aiesim::simulate(view, ref, in, out_ref);

  const auto check = [&](const aiesim::SimResult& r,
                         const std::vector<int>& out) {
    if (r.trace.digest() != rr.trace.digest() ||
        r.virtual_cycles != rr.virtual_cycles || out != out_ref) {
      g_digest_ok = false;
    }
  };

  Row row{"warm_rerun", depth, 0, 0, 0};
  Row full{"warm_full", depth, 0, 0, 0};
  std::vector<int> out;
  auto& cache = aiesim::CompiledGraphCache::instance();
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      cache.clear();
      out.clear();
      check(aiesim::simulate(view, cfg, in, out), out);
    }
    row.cold_s = seconds_since(t0);
    full.cold_s = row.cold_s;
  }
  {
    aiesim::ResimSession session{view, cfg};
    check(session.run(in, out), out);  // baseline (one-time, untimed)
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      check(session.resimulate({}, in, out), out);
      if (!session.last_was_incremental() || session.last_cone_size() != 0) {
        std::fprintf(stderr,
                     "FAIL: unchanged rerun at depth %d was not served "
                     "incrementally\n",
                     depth);
        std::exit(1);
      }
    }
    row.warm_s = seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      check(session.run(in, out), out);
    }
    full.warm_s = seconds_since(t1);
  }
  row.speedup = row.warm_s > 0 ? row.cold_s / row.warm_s : 0;
  full.speedup = full.warm_s > 0 ? full.cold_s / full.warm_s : 0;
  rows.push_back(row);
  rows.push_back(full);
}

/// Part B: kChains independent chains, an RTP fed only into chain 0; sweep
/// the RTP and compare full re-simulation against cone re-simulation.
Row bench_rtp_sweep(int depth, int sweep_points) {
  constexpr int chains = 32;  // compile-time: invoke() expands positionally
  rt::DynamicGraphBuilder b;
  // Chain 0: scale(rtp) then (depth-1) cone incs; chains 1.. are rb_inc.
  const int rtp_edge = [&] {
    int in0 = b.add_edge<int>();
    b.add_input(in0);
    const int rtp = b.add_edge<int>(1, rb_rtp);
    int prev = b.add_edge<int>();
    b.add_kernel(rb_scale, {in0, rtp, prev});
    for (int i = 1; i < depth; ++i) {
      const int next = b.add_edge<int>();
      b.add_kernel(rb_cone_inc, {prev, next});
      prev = next;
    }
    b.add_output(prev);
    return rtp;
  }();
  for (int c = 1; c < chains; ++c) {
    int prev = b.add_edge<int>();
    b.add_input(prev);
    for (int i = 0; i < depth; ++i) {
      const int next = b.add_edge<int>();
      b.add_kernel(rb_inc, {prev, next});
      prev = next;
    }
    b.add_output(prev);
  }
  b.add_input(rtp_edge);  // last input: (in_0 .. in_{chains-1}, rtp)
  const GraphView view = b.view();
  const std::size_t rtp_idx = static_cast<std::size_t>(chains);

  std::vector<int> in(128);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i) - 64;
  std::vector<std::vector<int>> outs(static_cast<std::size_t>(chains));
  std::vector<std::vector<int>> outs_chk(static_cast<std::size_t>(chains));

  aiesim::SimConfig cfg;
  aiesim::SimConfig ref = cfg;
  ref.engine = aiesim::EngineVariant::reference;

  // Expands to (in x chains, rtp, out x chains) positional arguments.
  const auto invoke = [&](auto&& fn, std::vector<std::vector<int>>& o,
                          int rtp_value) {
    for (auto& v : o) v.clear();
    return [&]<std::size_t... I, std::size_t... O>(std::index_sequence<I...>,
                                                   std::index_sequence<O...>) {
      return fn(((void)I, in)..., rtp_value, o[O]...);
    }(std::make_index_sequence<static_cast<std::size_t>(chains)>{},
      std::make_index_sequence<static_cast<std::size_t>(chains)>{});
  };

  Row row{"rtp_sweep", chains, 0, 0, 0};
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < sweep_points; ++p) {
      (void)invoke(
          [&](auto&&... a) { return aiesim::simulate(view, cfg, a...); },
          outs, p + 2);
    }
    row.cold_s = seconds_since(t0);
  }
  {
    aiesim::ResimSession session{view, cfg};
    (void)invoke([&](auto&&... a) { return session.run(a...); }, outs, 1);
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < sweep_points; ++p) {
      (void)invoke(
          [&](auto&&... a) { return session.resimulate({rtp_idx}, a...); },
          outs, p + 2);
      if (!session.last_was_incremental() ||
          session.last_cone_size() != static_cast<std::size_t>(depth)) {
        std::fprintf(stderr,
                     "FAIL: rtp sweep point %d did not run incrementally "
                     "(cone %zu, expected %d)\n",
                     p, session.last_cone_size(), depth);
        std::exit(1);
      }
    }
    row.warm_s = seconds_since(t0);

    // Correctness (outside the timed loops): one more sweep point, checked
    // pop for pop against a cold reference-engine run.
    const auto ri = invoke(
        [&](auto&&... a) { return session.resimulate({rtp_idx}, a...); },
        outs, 99);
    const auto rc = invoke(
        [&](auto&&... a) { return aiesim::simulate(view, ref, a...); },
        outs_chk, 99);
    if (ri.trace.digest() != rc.trace.digest() ||
        ri.virtual_cycles != rc.virtual_cycles ||
        ri.output_items != rc.output_items || outs != outs_chk) {
      g_digest_ok = false;
    }
  }
  row.speedup = row.warm_s > 0 ? row.cold_s / row.warm_s : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const int iters = argc > 1 ? std::max(1, std::atoi(argv[1])) : 40;
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 2 ? argv[2] : "BENCH_resim.json");
  const double min_warm = argc > 3 ? std::atof(argv[3]) : 3.0;
  const double min_resim = argc > 4 ? std::atof(argv[4]) : 10.0;
  // The acceptance thresholds are 3x / 10x; a run with relaxed bars (the
  // ctest smoke) records that it did not enforce them.
  const bool gate_enforced = min_warm >= 3.0 && min_resim >= 10.0;

  std::vector<Row> rows;
  for (const int depth : {64, 128, 256}) {
    bench_warm_rerun(depth, iters, rows);
  }
  double log_sum = 0;
  int n_gated = 0;
  for (const Row& r : rows) {
    if (r.phase != "warm_rerun") continue;  // warm_full rows are ungated
    log_sum += std::log(std::max(r.speedup, 1e-9));
    ++n_gated;
  }
  const double warm_geomean = std::exp(log_sum / std::max(1, n_gated));

  rows.push_back(bench_rtp_sweep(8, std::max(4, iters / 2)));
  const double resim_speedup = rows.back().speedup;

  std::printf(
      "\ncompiled-graph + cone re-simulation ablation (%d iterations):\n\n",
      iters);
  std::printf("%-12s %8s | %10s %10s %8s\n", "phase", "size", "cold(s)",
              "warm(s)", "speedup");
  std::printf("%.*s\n", 56,
              "--------------------------------------------------------");
  for (const Row& r : rows) {
    std::printf("%-12s %8d | %10.4f %10.4f %7.2fx\n", r.phase.c_str(),
                r.size, r.cold_s, r.warm_s, r.speedup);
  }
  const bool warm_ok = warm_geomean >= min_warm;
  const bool resim_ok = resim_speedup >= min_resim;
  std::printf("\nwarm-rerun geomean: %.2fx (gate: >= %.2fx) %s\n",
              warm_geomean, min_warm, warm_ok ? "PASS" : "FAIL");
  std::printf("rtp-sweep speedup:  %.2fx (gate: >= %.2fx) %s\n",
              resim_speedup, min_resim, resim_ok ? "PASS" : "FAIL");
  std::printf("digest vs reference: %s\n", g_digest_ok ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_resim\",\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": %s,\n"
                 "  \"iters\": %d,\n"
                 "  \"min_warm_geomean\": %.2f,\n"
                 "  \"min_resim_speedup\": %.2f,\n"
                 "  \"warm_geomean\": %.3f,\n"
                 "  \"resim_speedup\": %.3f,\n"
                 "  \"digest_identical\": %s,\n"
                 "  \"rows\": [\n",
                 std::thread::hardware_concurrency(),
                 gate_enforced ? "true" : "false", iters, min_warm, min_resim,
                 warm_geomean, resim_speedup, g_digest_ok ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"phase\": \"%s\", \"size\": %d, \"cold_s\": %.5f, "
                   "\"warm_s\": %.5f, \"speedup\": %.3f}%s\n",
                   r.phase.c_str(), r.size, r.cold_s, r.warm_s, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return g_digest_ok && warm_ok && resim_ok ? 0 : 1;
}

// bench_sync_overhead -- reproduces the paper's Section 5.2 profiling
// claim: on the bitonic example, cgsim spends 99.94 % of its runtime
// executing the kernel and only 0.06 % on synchronization and data
// transfer.
//
// Methodology note: the paper profiled with perf, where channel operations
// inline into the coroutine bodies and attribute to the *kernel symbol*;
// "synchronization" is the time in the scheduler itself. We measure the
// same split directly: wall-clock inside coroutine resumptions (kernel +
// inlined channel/data-transfer code, plus the source/sink coroutines) vs
// everything outside (ready-queue management and wake-up dispatch).
//
// The instrumented scheduler samples the clock once per loop iteration and
// reuses the previous reading as the interval start (see
// Scheduler::run_instrumented). That keeps the cost of the instrumentation
// itself out of the "synchronization" bucket it measures, at the price of
// charging the (nanosecond-scale) queue bookkeeping between two samples to
// the adjacent resume window -- the same attribution perf makes for
// inlined channel operations.
//
//   $ ./bench_sync_overhead [blocks]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "apps/bitonic.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 200000;
  std::mt19937 rng{9};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<apps::bitonic::Block> in(static_cast<std::size_t>(blocks));
  for (auto& b : in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, d(rng));
  }
  std::vector<apps::bitonic::Block> out;
  out.reserve(in.size());

  cgsim::RuntimeContext ctx{apps::bitonic::graph.view()};
  ctx.add_stream_source<apps::bitonic::Block>(
      0, std::span<const apps::bitonic::Block>{in}, 1);
  ctx.add_stream_sink<apps::bitonic::Block>(0, out);
  ctx.start_all();

  double resume_s = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto resumes = ctx.scheduler().run_instrumented(
      [&](std::coroutine_handle<> h) { ctx.on_task_finished(h); }, resume_s);
  const double total = seconds_since(t0);
  const double sched = total > resume_s ? total - resume_s : 0.0;
  const double pct_kernel = 100.0 * resume_s / total;
  const double pct_sync = 100.0 * sched / total;

  std::printf("bitonic, %d blocks through the cooperative runtime "
              "(%llu resumptions):\n",
              blocks, static_cast<unsigned long long>(resumes));
  std::printf("  total                    %8.3f s\n", total);
  std::printf("  kernel + data transfer   %8.3f s (%6.2f %%)\n", resume_s,
              pct_kernel);
  std::printf("  scheduling/sync          %8.6f s (%6.2f %%)\n", sched,
              pct_sync);
  std::printf("  sync cost per block      %8.1f ns\n",
              1e9 * sched / blocks);
  std::printf("paper (perf profile): 99.94 %% kernel, 0.06 %% sync\n");
  std::printf("shape check (kernel share > 99 %%): %s\n",
              pct_kernel > 99.0 ? "PASS" : "FAIL");
  return pct_kernel > 99.0 ? 0 : 1;
}

// bench_ablation_channel -- microbenchmarks of the channel layer, ablating
// the design choices DESIGN.md calls out: cooperative vs mutex/cv channels
// (the cgsim-vs-x86sim primitive gap of paper Table 2), ring capacity, and
// broadcast fan-out.
#include <benchmark/benchmark.h>

#include <coroutine>
#include <thread>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

class NullExec final : public Executor {
 public:
  void make_ready(std::coroutine_handle<>, std::uint64_t) override {}
};

/// Cooperative channel: single-threaded push/pop pair throughput.
void BM_CoopChannelPushPop(benchmark::State& state) {
  NullExec ex;
  CoopChannel<int> ch{1, static_cast<int>(state.range(0)), &ex};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(42));
    benchmark::DoNotOptimize(ch.try_pop(0, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoopChannelPushPop)->Arg(1)->Arg(8)->Arg(64)->Arg(1024);

/// Threaded channel under the same single-threaded access pattern: the
/// pure lock/notify cost difference.
void BM_ThreadedChannelPushPop(benchmark::State& state) {
  ThreadedChannel<int> ch{1, static_cast<int>(state.range(0))};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.blocking_push(42));
    benchmark::DoNotOptimize(ch.blocking_pop(0, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadedChannelPushPop)->Arg(64);

/// Threaded channel with a real producer thread: cross-thread handoff.
void BM_ThreadedChannelCrossThread(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ThreadedChannel<int> ch{1, 64};
    ch.set_producers(1);
    std::thread producer([&] {
      for (int i = 0; i < n; ++i) ch.blocking_push(i);
      ch.producer_done();
    });
    int v = 0;
    long got = 0;
    while (ch.blocking_pop(0, v)) ++got;
    producer.join();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThreadedChannelCrossThread)->Arg(10000)->UseRealTime();

/// Broadcast fan-out: cost of one push + N pops as consumers increase.
void BM_CoopChannelBroadcast(benchmark::State& state) {
  NullExec ex;
  const int consumers = static_cast<int>(state.range(0));
  CoopChannel<int> ch{consumers, 64, &ex};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(7));
    for (int c = 0; c < consumers; ++c) {
      benchmark::DoNotOptimize(ch.try_pop(c, v));
    }
  }
  state.SetItemsProcessed(state.iterations() * consumers);
}
BENCHMARK(BM_CoopChannelBroadcast)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Large elements: copy cost through the ring (window-sized blocks).
void BM_CoopChannelLargeElems(benchmark::State& state) {
  struct Big {
    std::array<float, 2048> data;
  };
  NullExec ex;
  CoopChannel<Big> ch{1, 4, &ex};
  ch.set_producers(1);
  Big b{};
  Big v{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(b));
    benchmark::DoNotOptimize(ch.try_pop(0, v));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * sizeof(Big)));
}
BENCHMARK(BM_CoopChannelLargeElems);

}  // namespace

BENCHMARK_MAIN();

// bench_ablation_channel -- microbenchmarks of the channel layer, ablating
// the design choices DESIGN.md calls out: cooperative vs mutex/cv channels
// (the cgsim-vs-x86sim primitive gap of paper Table 2), ring capacity,
// broadcast fan-out, scalar vs bulk transfers, and virtual vs
// devirtualized dispatch on the cooperative fast path.
//
// Besides the google-benchmark suites, the binary runs a fixed ablation
// (scalar/bulk x virtual/devirtualized, window-sized transfers) and writes
// the elements/s results to a machine-readable JSON file so successive PRs
// can track the trajectory:
//
//   bench_ablation_channel [BENCH_channel.json [total_elements]]
//
// Exit code is non-zero when the bulk path fails to reach the expected
// >= 2x elements/s over the scalar path on a 64-element window workload.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <coroutine>
#include <string>
#include <thread>
#include <vector>

#include "core/cgsim.hpp"
#include "bench_common.hpp"

namespace {

using namespace cgsim;

class NullExec final : public Executor {
 public:
  void make_ready(std::coroutine_handle<>, std::uint64_t) override {}
};

/// Launders a channel pointer so the compiler cannot see the concrete type
/// behind it: calls through the result use the vtable, reproducing what
/// the port layer paid before it carried CoopChannel<T>* directly.
__attribute__((noinline)) TypedChannel<int>* opaque(TypedChannel<int>* ch) {
  asm volatile("" : "+r"(ch));
  return ch;
}

/// Cooperative channel: single-threaded push/pop pair throughput.
void BM_CoopChannelPushPop(benchmark::State& state) {
  NullExec ex;
  CoopChannel<int> ch{1, static_cast<int>(state.range(0)), &ex};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(42));
    benchmark::DoNotOptimize(ch.try_pop(0, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoopChannelPushPop)->Arg(1)->Arg(8)->Arg(64)->Arg(1024);

/// Same access pattern through the type-erased interface: the virtual
/// dispatch cost the devirtualized port fast path removes.
void BM_CoopChannelPushPopVirtual(benchmark::State& state) {
  NullExec ex;
  CoopChannel<int> concrete{1, static_cast<int>(state.range(0)), &ex};
  concrete.set_producers(1);
  TypedChannel<int>* ch = opaque(&concrete);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch->try_push(42));
    benchmark::DoNotOptimize(ch->try_pop(0, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoopChannelPushPopVirtual)->Arg(64);

/// Bulk transfers: one try_push_n/try_pop_n pair moves a whole window.
void BM_CoopChannelBulkWindow(benchmark::State& state) {
  NullExec ex;
  const auto window = static_cast<std::size_t>(state.range(0));
  CoopChannel<int> ch{1, static_cast<int>(2 * window), &ex};
  ch.set_producers(1);
  std::vector<int> src(window, 42);
  std::vector<int> dst(window, 0);
  ChanStatus st{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push_n(src.data(), window, st));
    benchmark::DoNotOptimize(ch.try_pop_n(0, dst.data(), window, st));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window));
}
BENCHMARK(BM_CoopChannelBulkWindow)->Arg(64)->Arg(1024);

/// Threaded channel under the same single-threaded access pattern: the
/// pure lock/notify cost difference.
void BM_ThreadedChannelPushPop(benchmark::State& state) {
  ThreadedChannel<int> ch{1, static_cast<int>(state.range(0))};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.blocking_push(42));
    benchmark::DoNotOptimize(ch.blocking_pop(0, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadedChannelPushPop)->Arg(64);

/// Threaded channel with a real producer thread: cross-thread handoff.
void BM_ThreadedChannelCrossThread(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ThreadedChannel<int> ch{1, 64};
    ch.set_producers(1);
    std::thread producer([&] {
      for (int i = 0; i < n; ++i) ch.blocking_push(i);
      ch.producer_done();
    });
    int v = 0;
    long got = 0;
    while (ch.blocking_pop(0, v)) ++got;
    producer.join();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThreadedChannelCrossThread)->Arg(10000)->UseRealTime();

/// Broadcast fan-out: cost of one push + N pops as consumers increase.
void BM_CoopChannelBroadcast(benchmark::State& state) {
  NullExec ex;
  const int consumers = static_cast<int>(state.range(0));
  CoopChannel<int> ch{consumers, 64, &ex};
  ch.set_producers(1);
  int v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(7));
    for (int c = 0; c < consumers; ++c) {
      benchmark::DoNotOptimize(ch.try_pop(c, v));
    }
  }
  state.SetItemsProcessed(state.iterations() * consumers);
}
BENCHMARK(BM_CoopChannelBroadcast)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Large elements: copy cost through the ring (window-sized blocks).
void BM_CoopChannelLargeElems(benchmark::State& state) {
  struct Big {
    std::array<float, 2048> data;
  };
  NullExec ex;
  CoopChannel<Big> ch{1, 4, &ex};
  ch.set_producers(1);
  Big b{};
  Big v{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.try_push(b));
    benchmark::DoNotOptimize(ch.try_pop(0, v));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * sizeof(Big)));
}
BENCHMARK(BM_CoopChannelLargeElems);

// ---------------------------------------------------------------------------
// Fixed ablation with JSON output (tracked across PRs).
// ---------------------------------------------------------------------------

constexpr std::size_t kWindow = 64;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Scalar transfer of `total` elements in window-sized rounds, through the
/// concrete (devirtualized) channel type. Returns elements/s.
double measure_scalar_devirt(std::size_t total) {
  NullExec ex;
  CoopChannel<int> ch{1, 2 * kWindow, &ex};
  ch.set_producers(1);
  int v = 0;
  long sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total; done += kWindow) {
    for (std::size_t i = 0; i < kWindow; ++i) ch.try_push(static_cast<int>(i));
    for (std::size_t i = 0; i < kWindow; ++i) {
      ch.try_pop(0, v);
      sink += v;
    }
  }
  const double s = seconds_since(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(total) / s;
}

/// Scalar transfer through the type-erased interface (virtual dispatch).
double measure_scalar_virtual(std::size_t total) {
  NullExec ex;
  CoopChannel<int> concrete{1, 2 * kWindow, &ex};
  concrete.set_producers(1);
  TypedChannel<int>* ch = opaque(&concrete);
  int v = 0;
  long sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total; done += kWindow) {
    for (std::size_t i = 0; i < kWindow; ++i) {
      ch->try_push(static_cast<int>(i));
    }
    for (std::size_t i = 0; i < kWindow; ++i) {
      ch->try_pop(0, v);
      sink += v;
    }
  }
  const double s = seconds_since(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(total) / s;
}

/// Bulk transfer: one try_push_n/try_pop_n pair per window.
double measure_bulk(std::size_t total) {
  NullExec ex;
  CoopChannel<int> ch{1, 2 * kWindow, &ex};
  ch.set_producers(1);
  std::array<int, kWindow> src{};
  std::array<int, kWindow> dst{};
  for (std::size_t i = 0; i < kWindow; ++i) src[i] = static_cast<int>(i);
  ChanStatus st{};
  long sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t done = 0; done < total; done += kWindow) {
    ch.try_push_n(src.data(), kWindow, st);
    ch.try_pop_n(0, dst.data(), kWindow, st);
    sink += dst[kWindow - 1];
  }
  const double s = seconds_since(t0);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(total) / s;
}

int run_ablation(const std::string& json_path, std::size_t total) {
  // Warm up each path once so page faults and frequency scaling do not
  // land inside the measured run.
  measure_scalar_devirt(total / 8 + kWindow);
  measure_scalar_virtual(total / 8 + kWindow);
  measure_bulk(total / 8 + kWindow);

  const double scalar_eps = measure_scalar_devirt(total);
  const double virtual_eps = measure_scalar_virtual(total);
  const double bulk_eps = measure_bulk(total);
  const double bulk_speedup = bulk_eps / scalar_eps;
  const double devirt_speedup = scalar_eps / virtual_eps;

  std::printf("\n-- channel ablation (window=%zu, %zu elements) --\n", kWindow,
              total);
  std::printf("scalar (devirtualized): %12.0f elems/s\n", scalar_eps);
  std::printf("scalar (virtual):       %12.0f elems/s\n", virtual_eps);
  std::printf("bulk   (get_n/put_n):   %12.0f elems/s\n", bulk_eps);
  std::printf("bulk vs scalar:    %.2fx (required >= 2.0x)\n", bulk_speedup);
  std::printf("devirt vs virtual: %.2fx\n", devirt_speedup);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_channel\",\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": true,\n"
                 "  \"window\": %zu,\n"
                 "  \"total_elements\": %zu,\n"
                 "  \"scalar_devirt_elems_per_s\": %.0f,\n"
                 "  \"scalar_virtual_elems_per_s\": %.0f,\n"
                 "  \"bulk_elems_per_s\": %.0f,\n"
                 "  \"bulk_speedup_vs_scalar\": %.3f,\n"
                 "  \"devirt_speedup_vs_virtual\": %.3f\n"
                 "}\n",
                 std::thread::hardware_concurrency(),
                 kWindow, total, scalar_eps, virtual_eps, bulk_eps,
                 bulk_speedup, devirt_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (bulk_speedup < 2.0) {
    std::printf("FAIL: bulk speedup %.2fx below the 2x bar\n", bulk_speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 1 ? argv[1] : "BENCH_channel.json");
  std::size_t total = 8u << 20;  // 8M elements: ~10ms/path, stable ratios
  if (argc > 2) total = static_cast<std::size_t>(std::stoull(argv[2]));
  if (total < kWindow) total = kWindow;
  return run_ablation(json_path, total);
}

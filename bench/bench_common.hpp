// Shared argv helpers for the cgsim bench binaries.
//
// Every bench_* that emits a BENCH_*.json accepts a uniform
//
//   --out <dir>     (or --out=<dir>; default ".")
//
// naming the directory the JSON lands in, so CI can collect canonical
// copies instead of fishing them out of build/. The flag is stripped from
// argv before the positional arguments are parsed, which keeps the
// existing positional invocations (ctest smokes, scripts) working
// unchanged. Call strip_out_dir() after benchmark::Initialize so
// --benchmark_* flags are consumed first.
#pragma once

#include <string>

namespace benchutil {

/// Removes "--out <dir>" / "--out=<dir>" from argv (compacting it in
/// place) and returns the directory, "." when absent.
inline std::string strip_out_dir(int& argc, char** argv) {
  std::string dir = ".";
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string a = argv[r];
    if (a == "--out" && r + 1 < argc) {
      dir = argv[++r];
      continue;
    }
    if (a.rfind("--out=", 0) == 0) {
      dir = a.substr(6);
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return dir.empty() ? std::string{"."} : dir;
}

/// Joins the output directory with a JSON filename; absolute filenames
/// win over the directory so explicit positional paths keep working.
inline std::string join_out(const std::string& dir, const std::string& file) {
  if (!file.empty() && file.front() == '/') return file;
  if (dir == ".") return file;
  return dir + "/" + file;
}

}  // namespace benchutil

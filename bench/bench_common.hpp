// Shared argv helpers for the cgsim bench binaries.
//
// Every bench_* that emits a BENCH_*.json accepts a uniform
//
//   --out <dir>     (or --out=<dir>; default ".")
//
// naming the directory the JSON lands in, so CI can collect canonical
// copies instead of fishing them out of build/. The flag is stripped from
// argv before the positional arguments are parsed, which keeps the
// existing positional invocations (ctest smokes, scripts) working
// unchanged. Call strip_out_dir() after benchmark::Initialize so
// --benchmark_* flags are consumed first.
// Every emitter also records the process's resource footprint via
// emit_resource_fields(): peak RSS and total wall-clock, so a regression
// in memory or end-to-end runtime shows up in the canonical JSON even when
// the benchmark's own metric holds steady. Call wall_anchor() first thing
// in main() to start the wall clock.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

namespace benchutil {

/// Removes "--out <dir>" / "--out=<dir>" from argv (compacting it in
/// place) and returns the directory, "." when absent. The directory is
/// created (recursively) when missing, so "--out results/run3" works
/// without a prior mkdir -p; creation failure is left for the fopen of
/// the JSON itself to report.
inline std::string strip_out_dir(int& argc, char** argv) {
  std::string dir = ".";
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string a = argv[r];
    if (a == "--out" && r + 1 < argc) {
      dir = argv[++r];
      continue;
    }
    if (a.rfind("--out=", 0) == 0) {
      dir = a.substr(6);
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  if (dir.empty()) dir = ".";
  if (dir != ".") {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  return dir;
}

/// Joins the output directory with a JSON filename; absolute filenames
/// win over the directory so explicit positional paths keep working.
inline std::string join_out(const std::string& dir, const std::string& file) {
  if (!file.empty() && file.front() == '/') return file;
  if (dir == ".") return file;
  return dir + "/" + file;
}

/// Peak resident set size of this process in bytes (ru_maxrss is KiB on
/// Linux).
inline long long peak_rss_bytes() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<long long>(ru.ru_maxrss) * 1024;
}

/// Seconds since wall_anchor() was first called. Call wall_anchor() at the
/// top of main() so the figure covers the whole process, not just the
/// emission path.
inline std::chrono::steady_clock::time_point& wall_anchor_point() {
  static std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}
inline void wall_anchor() { (void)wall_anchor_point(); }
inline double total_wall_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_anchor_point())
      .count();
}

/// Writes the uniform resource-usage fields every BENCH_*.json carries.
/// Emit inside the top-level object, after the opening brace.
inline void emit_resource_fields(std::FILE* f) {
  std::fprintf(f, "  \"peak_rss_bytes\": %lld,\n  \"total_wall_s\": %.3f,\n",
               peak_rss_bytes(), total_wall_s());
}

}  // namespace benchutil

// bench_ablation_sweep -- batch scenario-sweep engine ablation: N
// independent scenario variants of ONE compiled graph, executed
//
//   * serial       -- aiesim::simulate() per variant on the caller thread
//                     (warm compile cache: the honest single-thread
//                     alternative a sweep script has today),
//   * pooled       -- SweepRunner worker pool; every variant is a full
//                     run() on a warm ResimSession checked out of a
//                     SessionPool (exclusive leases, arena-per-slot
//                     scratch),
//   * pooled_resim -- same pool, but RTP-only variants go to a dedicated
//                     "rtp lane" of the session pool whose baseline was
//                     established with the base inputs, so each variant is
//                     a cone-limited resimulate({rtp}) instead of a full
//                     run. Seed variants still take the full-run lane.
//
// The variant set mixes V RTP-only variants (same inputs, swept runtime
// parameter) with S seed variants (perturbed input data), shuffled
// deterministically. Correctness is unconditional: every mode must produce
// the identical per-variant digest set (order-independent), and every RTP
// variant under pooled_resim must actually execute incrementally.
//
// Gates (thresholds from argv so the ctest smoke can relax them):
//   * pooled >= `min-pooled` (default 3x) over serial -- enforced only on
//     hosts with >= 4 hardware threads (gate_enforced records it);
//   * pooled_resim >= `min-resim` (default 1.3x) over pooled -- this is an
//     algorithmic win (cone re-simulation does ~1/chains of the work for
//     an RTP variant), so it is enforced even on one hardware thread
//     whenever min-resim > 0.
//
//   $ ./bench_ablation_sweep [variants [json [min-pooled [min-resim]]]]
//                            [--out dir]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aiesim/compiled.hpp"
#include "aiesim/engine.hpp"
#include "aiesim/resim.hpp"
#include "bench_common.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"
#include "core/sweep.hpp"

namespace {

using namespace cgsim;

inline constexpr PortSettings sw_rtp{.rtp = true};

COMPUTE_KERNEL(aie, sw_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

// Distinct handle for the RTP chain so cone records are identifiable.
COMPUTE_KERNEL(aie, sw_cone_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, sw_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, sw_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

constexpr int kChains = 8;   ///< compile-time: invoke() expands positionally
constexpr int kDepth = 6;    ///< kernels per chain
constexpr int kItems = 64;   ///< input items per sweep run
constexpr int kBaseRtp = 1;  ///< rtp value of the rtp-lane baseline

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// One scenario variant of the shared graph.
struct Variant {
  std::string name;
  bool rtp_only = false;  ///< base inputs, only the RTP differs
  int rtp_value = kBaseRtp;
  int seed = 0;  ///< perturbs the input data (0 = base inputs)
};

/// Deterministic variant mix: V rtp-only points interleaved with S seed
/// perturbations, so the pooled schedules see heterogeneous work.
std::vector<Variant> make_variants(int v_rtp, int v_seed) {
  std::vector<Variant> vs;
  vs.reserve(static_cast<std::size_t>(v_rtp + v_seed));
  int r = 0, s = 0;
  while (r < v_rtp || s < v_seed) {
    for (int k = 0; k < 3 && r < v_rtp; ++k, ++r) {
      vs.push_back(Variant{"rtp_" + std::to_string(r), true, r + 2, 0});
    }
    if (s < v_seed) {
      vs.push_back(Variant{"seed_" + std::to_string(s), false, 7, s + 1});
      ++s;
    }
  }
  return vs;
}

/// Input image for a seed: written through the worker's arena so
/// steady-state variant staging does zero heap traffic.
void fill_inputs(std::vector<int>& in, int seed, Arena& arena) {
  int* buf = arena.alloc_array<int>(kItems);
  for (int i = 0; i < kItems; ++i) {
    buf[i] = (i - kItems / 2) + seed * 31 + (seed != 0 ? i % 7 : 0);
  }
  in.assign(buf, buf + kItems);
}

/// Per-worker scratch: input/output vectors sized once and reused, so a
/// slot performs no allocation after its first job.
struct Scratch {
  std::vector<int> in;
  std::array<std::vector<int>, kChains> outs;
};

/// Expands fn(in x kChains, rtp, out x kChains) positionally.
template <class Fn>
aiesim::SimResult invoke_graph(Fn&& fn, std::vector<int>& in, int rtp_value,
                               std::array<std::vector<int>, kChains>& outs) {
  for (auto& v : outs) v.clear();
  return [&]<std::size_t... I, std::size_t... O>(std::index_sequence<I...>,
                                                 std::index_sequence<O...>) {
    return fn(((void)I, in)..., rtp_value, outs[O]...);
  }(std::make_index_sequence<kChains>{}, std::make_index_sequence<kChains>{});
}

std::uint64_t digest_of(const aiesim::SimResult& r,
                        const std::array<std::vector<int>, kChains>& outs) {
  std::uint64_t h = fnv1a(&r.virtual_cycles, sizeof r.virtual_cycles);
  const std::uint64_t td = r.trace.digest();
  h = fnv1a(&td, sizeof td, h);
  for (const std::vector<int>& o : outs) {
    h = fnv1a(o.data(), o.size() * sizeof(int), h);
  }
  return h;
}

/// Builds the shared graph: chain 0 = sw_scale(rtp) -> sw_cone_inc^(d-1),
/// chains 1.. = sw_inc^d. Inputs (in_0 .. in_{kChains-1}, rtp).
void build_graph(rt::DynamicGraphBuilder& b) {
  int in0 = b.add_edge<int>();
  b.add_input(in0);
  const int rtp = b.add_edge<int>(1, sw_rtp);
  int prev = b.add_edge<int>();
  b.add_kernel(sw_scale, {in0, rtp, prev});
  for (int i = 1; i < kDepth; ++i) {
    const int next = b.add_edge<int>();
    b.add_kernel(sw_cone_inc, {prev, next});
    prev = next;
  }
  b.add_output(prev);
  for (int c = 1; c < kChains; ++c) {
    int p = b.add_edge<int>();
    b.add_input(p);
    for (int i = 0; i < kDepth; ++i) {
      const int next = b.add_edge<int>();
      b.add_kernel(sw_inc, {p, next});
      p = next;
    }
    b.add_output(p);
  }
  b.add_input(rtp);  // last input: index kChains
}

constexpr std::size_t kRtpInputIdx = kChains;

// Session-pool lanes: rtp lane sessions hold a baseline established with
// the base inputs and are only ever resimulate()d, so a full-run variant
// can never corrupt the baseline the cone splice depends on.
enum : int { kLaneRtp = 0, kLaneFull = 1 };

struct ModeOutcome {
  SweepReport report;
  bool every_rtp_incremental = true;
};

using Pool = SessionPool<int, aiesim::ResimSession>;

/// Runs one variant on a leased session; establishes the rtp-lane
/// baseline when the lease is fresh.
SweepVariantRow run_variant(const Variant& v, Pool& pool, bool use_resim,
                            const GraphView& view,
                            const aiesim::SimConfig& cfg, Scratch& scratch,
                            Arena& arena, bool& rtp_incremental) {
  const auto t0 = std::chrono::steady_clock::now();
  aiesim::SimResult r;
  bool incremental = false;
  const auto make = [&] {
    return std::make_unique<aiesim::ResimSession>(view, cfg);
  };
  if (use_resim && v.rtp_only) {
    auto lease = pool.checkout(kLaneRtp, make);
    if (lease.fresh()) {
      fill_inputs(scratch.in, 0, arena);
      (void)invoke_graph(
          [&](auto&&... a) { return lease->run(a...); }, scratch.in,
          kBaseRtp, scratch.outs);
    }
    fill_inputs(scratch.in, 0, arena);
    r = invoke_graph(
        [&](auto&&... a) { return lease->resimulate({kRtpInputIdx}, a...); },
        scratch.in, v.rtp_value, scratch.outs);
    incremental = lease->last_was_incremental();
    if (!incremental) rtp_incremental = false;
  } else {
    auto lease = pool.checkout(kLaneFull, make);
    fill_inputs(scratch.in, v.seed, arena);
    r = invoke_graph([&](auto&&... a) { return lease->run(a...); },
                     scratch.in, v.rtp_value, scratch.outs);
  }
  SweepVariantRow row;
  row.name = v.name;
  row.cycles = r.virtual_cycles;
  row.digest = digest_of(r, scratch.outs);
  row.incremental = incremental;
  row.seconds = seconds_since(t0);
  return row;
}

/// serial: simulate() per variant on this thread, one arena reset per run.
ModeOutcome sweep_serial(const std::vector<Variant>& variants,
                         const GraphView& view,
                         const aiesim::SimConfig& cfg) {
  ModeOutcome out;
  out.report.workers = 1;
  Scratch scratch;
  Arena arena;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Variant& v : variants) {
    arena.reset();
    const auto v0 = std::chrono::steady_clock::now();
    fill_inputs(scratch.in, v.seed, arena);
    const aiesim::SimResult r = invoke_graph(
        [&](auto&&... a) { return aiesim::simulate(view, cfg, a...); },
        scratch.in, v.rtp_value, scratch.outs);
    SweepVariantRow row;
    row.name = v.name;
    row.cycles = r.virtual_cycles;
    row.digest = digest_of(r, scratch.outs);
    row.seconds = seconds_since(v0);
    out.report.rows.push_back(std::move(row));
  }
  out.report.wall_s = seconds_since(t0);
  return out;
}

/// pooled / pooled_resim: SweepRunner fan-out over leased warm sessions,
/// MPSC aggregation into the report on the caller thread.
ModeOutcome sweep_pooled(const std::vector<Variant>& variants,
                         SweepRunner& runner, Pool& pool, bool use_resim,
                         const GraphView& view,
                         const aiesim::SimConfig& cfg) {
  ModeOutcome out;
  out.report.workers = runner.workers();
  std::vector<Scratch> scratch(static_cast<std::size_t>(runner.workers()));
  std::atomic<bool> rtp_incremental{true};
  const auto t0 = std::chrono::steady_clock::now();
  runner.run_batch(
      variants.size(),
      [&](std::size_t i, SweepRunner::WorkerSlot& slot) {
        bool inc_ok = true;
        SweepVariantRow row = run_variant(
            variants[i], pool, use_resim, view, cfg,
            scratch[static_cast<std::size_t>(slot.worker)], slot.arena,
            inc_ok);
        if (!inc_ok) rtp_incremental.store(false, std::memory_order_relaxed);
        return row;
      },
      [&](std::size_t, SweepVariantRow row) {
        out.report.rows.push_back(std::move(row));
      });
  out.report.wall_s = seconds_since(t0);
  out.every_rtp_incremental = rtp_incremental.load();
  return out;
}

/// Order-independent row comparison: both modes must have produced the
/// same (name -> digest, cycles) mapping.
bool rows_equal(const SweepReport& a, const SweepReport& b) {
  if (a.rows.size() != b.rows.size()) return false;
  auto key = [](const SweepVariantRow& r) { return r.name; };
  std::vector<SweepVariantRow> sa = a.rows, sb = b.rows;
  auto by_name = [&](const SweepVariantRow& x, const SweepVariantRow& y) {
    return key(x) < key(y);
  };
  std::sort(sa.begin(), sa.end(), by_name);
  std::sort(sb.begin(), sb.end(), by_name);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].name != sb[i].name || sa[i].digest != sb[i].digest ||
        sa[i].cycles != sb[i].cycles) {
      return false;
    }
  }
  return a.combined_digest() == b.combined_digest();
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const int n_variants = argc > 1 ? std::max(4, std::atoi(argv[1])) : 40;
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 2 ? argv[2] : "BENCH_sweep.json");
  const double min_pooled = argc > 3 ? std::atof(argv[3]) : 3.0;
  const double min_resim = argc > 4 ? std::atof(argv[4]) : 1.3;

  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = hw >= 4 ? 4 : std::max(1, static_cast<int>(hw));
  // The parallel gate needs real cores; the resim gate is algorithmic
  // (cone re-simulation does ~1/kChains of the work) and holds on any
  // host, so only an explicit 0 from the smoke invocation relaxes it.
  const bool gate_enforced = hw >= 4 && min_pooled >= 3.0;
  const bool resim_gate = min_resim > 0.0;

  const int v_seed = std::max(2, n_variants / 4);
  const int v_rtp = std::max(2, n_variants - v_seed);
  const std::vector<Variant> variants = make_variants(v_rtp, v_seed);

  rt::DynamicGraphBuilder b;
  build_graph(b);
  const GraphView view = b.view();
  aiesim::SimConfig cfg;
  aiesim::CompiledGraphCache::instance().clear();

  std::printf("-- scenario sweep: %zu variants (%d rtp-only, %d seed), "
              "%d workers, %u hw threads --\n",
              variants.size(), v_rtp, v_seed, workers, hw);

  const ModeOutcome serial = sweep_serial(variants, view, cfg);

  SweepRunner runner{workers};
  Pool pool_full;
  const ModeOutcome pooled =
      sweep_pooled(variants, runner, pool_full, false, view, cfg);
  Pool pool_resim;
  const ModeOutcome resim =
      sweep_pooled(variants, runner, pool_resim, true, view, cfg);

  const double pooled_speedup =
      pooled.report.wall_s > 0 ? serial.report.wall_s / pooled.report.wall_s
                               : 0;
  const double resim_extra = resim.report.wall_s > 0
                                 ? pooled.report.wall_s / resim.report.wall_s
                                 : 0;

  const bool digest_ok = rows_equal(serial.report, pooled.report) &&
                         rows_equal(serial.report, resim.report);
  const bool incremental_ok =
      resim.every_rtp_incremental &&
      resim.report.incremental_runs() == static_cast<std::uint64_t>(v_rtp);

  std::size_t arena_bytes = 0;
  std::uint64_t arena_resets = 0;
  for (int i = 0; i < runner.workers(); ++i) {
    arena_bytes += runner.slot(i).arena.capacity_bytes();
    arena_resets += runner.slot(i).arena.resets();
  }
  const auto cache = aiesim::CompiledGraphCache::instance().stats();

  std::printf("serial:        %9.4f s  (%6.1f variants/s)\n",
              serial.report.wall_s, serial.report.variants_per_sec());
  std::printf("pooled:        %9.4f s  (%6.1f variants/s, %.2fx)\n",
              pooled.report.wall_s, pooled.report.variants_per_sec(),
              pooled_speedup);
  std::printf("pooled+resim:  %9.4f s  (%6.1f variants/s, %.2fx over "
              "pooled, %llu incremental)\n",
              resim.report.wall_s, resim.report.variants_per_sec(),
              resim_extra,
              static_cast<unsigned long long>(
                  resim.report.incremental_runs()));
  std::printf("sessions: full-lane created %llu reused %llu; resim-lane "
              "created %llu reused %llu\n",
              static_cast<unsigned long long>(pool_full.created()),
              static_cast<unsigned long long>(pool_full.reused()),
              static_cast<unsigned long long>(pool_resim.created()),
              static_cast<unsigned long long>(pool_resim.reused()));
  std::printf("compiled cache: %llu hits / %llu misses; arenas: %zu bytes, "
              "%llu resets\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), arena_bytes,
              static_cast<unsigned long long>(arena_resets));

  const bool pooled_ok = !gate_enforced || pooled_speedup >= min_pooled;
  const bool resim_ok = !resim_gate || resim_extra >= min_resim;
  if (gate_enforced) {
    std::printf("pooled gate (>= %.2fx): %s\n", min_pooled,
                pooled_ok ? "PASS" : "FAIL");
  } else {
    std::printf("pooled gate (>= %.2fx): skipped (hw_threads=%u < 4 or "
                "relaxed bar)\n",
                min_pooled, hw);
  }
  std::printf("resim gate (>= %.2fx over pooled): %s\n", min_resim,
              resim_gate ? (resim_ok ? "PASS" : "FAIL") : "skipped");
  std::printf("digests identical across modes: %s\n",
              digest_ok ? "PASS" : "FAIL");
  std::printf("rtp variants incremental: %s\n",
              incremental_ok ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(
        f,
        "  \"bench\": \"bench_ablation_sweep\",\n"
        "  \"hw_threads\": %u,\n"
        "  \"gate_enforced\": %s,\n"
        "  \"workers\": %d,\n"
        "  \"variants_rtp\": %d,\n"
        "  \"variants_seed\": %d,\n"
        "  \"min_pooled_speedup\": %.2f,\n"
        "  \"min_resim_speedup\": %.2f,\n"
        "  \"serial_s\": %.6f,\n"
        "  \"pooled_s\": %.6f,\n"
        "  \"pooled_resim_s\": %.6f,\n"
        "  \"pooled_speedup\": %.3f,\n"
        "  \"resim_extra_speedup\": %.3f,\n"
        "  \"variants_per_sec_serial\": %.2f,\n"
        "  \"variants_per_sec_pooled\": %.2f,\n"
        "  \"variants_per_sec_pooled_resim\": %.2f,\n"
        "  \"digest_identical\": %s,\n"
        "  \"incremental_runs\": %llu,\n"
        "  \"sessions_created_full\": %llu,\n"
        "  \"sessions_reused_full\": %llu,\n"
        "  \"sessions_created_resim\": %llu,\n"
        "  \"sessions_reused_resim\": %llu,\n"
        "  \"compiled_cache_hits\": %llu,\n"
        "  \"compiled_cache_misses\": %llu,\n"
        "  \"arena_capacity_bytes\": %zu,\n"
        "  \"arena_resets\": %llu,\n"
        "  \"combined_digest\": %llu,\n"
        "  \"rows\": [\n",
        hw, gate_enforced ? "true" : "false", workers, v_rtp, v_seed,
        min_pooled, min_resim, serial.report.wall_s, pooled.report.wall_s,
        resim.report.wall_s, pooled_speedup, resim_extra,
        serial.report.variants_per_sec(), pooled.report.variants_per_sec(),
        resim.report.variants_per_sec(), digest_ok ? "true" : "false",
        static_cast<unsigned long long>(resim.report.incremental_runs()),
        static_cast<unsigned long long>(pool_full.created()),
        static_cast<unsigned long long>(pool_full.reused()),
        static_cast<unsigned long long>(pool_resim.created()),
        static_cast<unsigned long long>(pool_resim.reused()),
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses), arena_bytes,
        static_cast<unsigned long long>(arena_resets),
        static_cast<unsigned long long>(resim.report.combined_digest()));
    for (std::size_t i = 0; i < resim.report.rows.size(); ++i) {
      const SweepVariantRow& r = resim.report.rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"cycles\": %llu, \"digest\": "
                   "%llu, \"incremental\": %s, \"seconds\": %.6f}%s\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.cycles),
                   static_cast<unsigned long long>(r.digest),
                   r.incremental ? "true" : "false", r.seconds,
                   i + 1 < resim.report.rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return digest_ok && incremental_ok && pooled_ok && resim_ok ? 0 : 1;
}

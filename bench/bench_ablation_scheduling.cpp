// bench_ablation_scheduling -- end-to-end ablation of the execution
// strategy (cooperative single-thread vs one OS thread per kernel) and of
// the channel capacity, on a two-kernel pipeline with configurable work
// per element. This isolates the paper's Table 2 effect: cooperative
// scheduling wins when synchronization is frequent relative to compute.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/cgsim.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using namespace cgsim;

// Work knob: iterations of a cheap hash per element.
inline int spin(int v, int rounds) {
  unsigned x = static_cast<unsigned>(v);
  for (int i = 0; i < rounds; ++i) x = x * 2654435761u + 1;
  return static_cast<int>(x);
}

COMPUTE_KERNEL(aie, sched_light,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(spin(co_await in.get(), 4));
}

COMPUTE_KERNEL(aie, sched_heavy,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(spin(co_await in.get(), 4096));
}

constexpr auto light_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> m, z;
  sched_light(a, m);
  sched_light(m, z);
  return std::make_tuple(z);
}>;

constexpr auto heavy_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> m, z;
  sched_heavy(a, m);
  sched_heavy(m, z);
  return std::make_tuple(z);
}>;

constexpr auto tiny_cap_graph = make_compute_graph_v<[](IoConnector<int> a) {
  a.capacity(2);
  IoConnector<int> m, z;
  m.capacity(2);
  z.capacity(2);
  sched_light(a, m);
  sched_light(m, z);
  return std::make_tuple(z);
}>;

void run_backend(const GraphView& g, ExecMode mode, int items) {
  std::vector<int> in(static_cast<std::size_t>(items), 3);
  std::vector<int> out;
  if (mode == ExecMode::threaded) {
    x86sim::simulate(g, 1, in, out);
  } else {
    run_graph(g, RunOptions{}, in, out);
  }
  benchmark::DoNotOptimize(out.size());
}

/// Fine-grained sync, almost no compute: the bitonic-like regime where the
/// paper reports cgsim ahead of x86sim.
void BM_LightPipeline_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(light_graph.view(), ExecMode::coop, 20000);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LightPipeline_Coop);

void BM_LightPipeline_Threaded(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(light_graph.view(), ExecMode::threaded, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LightPipeline_Threaded)->UseRealTime();

/// Compute-heavy elements: sync overhead amortized (bilinear/IIR regime).
void BM_HeavyPipeline_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(heavy_graph.view(), ExecMode::coop, 500);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_HeavyPipeline_Coop);

void BM_HeavyPipeline_Threaded(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(heavy_graph.view(), ExecMode::threaded, 500);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_HeavyPipeline_Threaded)->UseRealTime();

/// Channel capacity ablation: capacity 2 forces a suspension nearly every
/// element; the default (64) lets the scheduler batch.
void BM_CapacityTiny_Coop(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(tiny_cap_graph.view(), ExecMode::coop, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CapacityTiny_Coop);

void BM_CapacityDefault_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(light_graph.view(), ExecMode::coop, 20000);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CapacityDefault_Coop);

}  // namespace

BENCHMARK_MAIN();

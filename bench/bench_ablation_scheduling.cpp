// bench_ablation_scheduling -- end-to-end ablation of the execution
// strategy (cooperative single-thread vs sharded multi-core cooperative vs
// one OS thread per kernel) and of the channel capacity, on pipelines with
// configurable work per element. This isolates the paper's Table 2 effect:
// cooperative scheduling wins when synchronization is frequent relative to
// compute, and coop_mt recovers multi-core scaling on wide graphs without
// giving up the cooperative fast path inside each shard.
//
// Besides the google-benchmark suites, the binary runs a fixed ablation
// (coop vs coop_mt at 2 and 4 workers on a four-component heavy graph) and
// writes the results to a machine-readable JSON file:
//
//   bench_ablation_scheduling [BENCH_sched.json [items-per-pipeline]]
//
// On hosts with >= 4 hardware threads the exit code is non-zero when
// coop_mt at 4 workers fails to reach >= 2x over single-threaded coop; on
// smaller hosts the speedup is recorded but not enforced.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/cgsim.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using namespace cgsim;

// Work knob: iterations of a cheap hash per element.
inline int spin(int v, int rounds) {
  unsigned x = static_cast<unsigned>(v);
  for (int i = 0; i < rounds; ++i) x = x * 2654435761u + 1;
  return static_cast<int>(x);
}

COMPUTE_KERNEL(aie, sched_light,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(spin(co_await in.get(), 4));
}

COMPUTE_KERNEL(aie, sched_heavy,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(spin(co_await in.get(), 4096));
}

constexpr auto light_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> m, z;
  sched_light(a, m);
  sched_light(m, z);
  return std::make_tuple(z);
}>;

constexpr auto heavy_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> m, z;
  sched_heavy(a, m);
  sched_heavy(m, z);
  return std::make_tuple(z);
}>;

constexpr auto tiny_cap_graph = make_compute_graph_v<[](IoConnector<int> a) {
  a.capacity(2);
  IoConnector<int> m, z;
  m.capacity(2);
  z.capacity(2);
  sched_light(a, m);
  sched_light(m, z);
  return std::make_tuple(z);
}>;

void run_backend(const GraphView& g, ExecMode mode, int items) {
  std::vector<int> in(static_cast<std::size_t>(items), 3);
  std::vector<int> out;
  if (mode == ExecMode::threaded) {
    x86sim::simulate(g, 1, in, out);
  } else {
    run_graph(g, RunOptions{}, in, out);
  }
  benchmark::DoNotOptimize(out.size());
}

/// Fine-grained sync, almost no compute: the bitonic-like regime where the
/// paper reports cgsim ahead of x86sim.
void BM_LightPipeline_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(light_graph.view(), ExecMode::coop, 20000);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LightPipeline_Coop);

void BM_LightPipeline_Threaded(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(light_graph.view(), ExecMode::threaded, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_LightPipeline_Threaded)->UseRealTime();

/// Compute-heavy elements: sync overhead amortized (bilinear/IIR regime).
void BM_HeavyPipeline_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(heavy_graph.view(), ExecMode::coop, 500);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_HeavyPipeline_Coop);

void BM_HeavyPipeline_Threaded(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(heavy_graph.view(), ExecMode::threaded, 500);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_HeavyPipeline_Threaded)->UseRealTime();

/// Channel capacity ablation: capacity 2 forces a suspension nearly every
/// element; the default (64) lets the scheduler batch.
void BM_CapacityTiny_Coop(benchmark::State& state) {
  for (auto _ : state) {
    run_backend(tiny_cap_graph.view(), ExecMode::coop, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CapacityTiny_Coop);

void BM_CapacityDefault_Coop(benchmark::State& state) {
  for (auto _ : state) run_backend(light_graph.view(), ExecMode::coop, 20000);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CapacityDefault_Coop);

// ---------------------------------------------------------------------------
// Sharded execution (coop_mt) on a wide multi-component graph.
// ---------------------------------------------------------------------------

// Four independent two-stage heavy pipelines: the shape the partitioner
// splits into four shards with zero cross-shard edges, so coop_mt speedup
// here measures pure multi-core scaling of the cooperative scheduler.
constexpr auto wide_graph = make_compute_graph_v<[](
    IoConnector<int> a, IoConnector<int> b, IoConnector<int> c,
    IoConnector<int> d) {
  IoConnector<int> a1, a2, b1, b2, c1, c2, d1, d2;
  sched_heavy(a, a1);
  sched_heavy(a1, a2);
  sched_heavy(b, b1);
  sched_heavy(b1, b2);
  sched_heavy(c, c1);
  sched_heavy(c1, c2);
  sched_heavy(d, d1);
  sched_heavy(d1, d2);
  return std::make_tuple(a2, b2, c2, d2);
}>;

double run_wide(ExecMode mode, int workers, int items, bool steal = false,
                RunResult* result_out = nullptr) {
  std::vector<int> a(static_cast<std::size_t>(items), 3);
  std::vector<int> b = a, c = a, d = a;
  std::vector<int> oa, ob, oc, od;
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = run_graph(wide_graph.view(),
                          RunOptions{.mode = mode,
                                     .repetitions = 1,
                                     .workers = workers,
                                     .steal = steal},
                          a, b, c, d, oa, ob, oc, od);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(oa.size() + ob.size() + oc.size() + od.size());
  if (result_out != nullptr) *result_out = std::move(r);
  return s;
}

void BM_WideGraph_Coop(benchmark::State& state) {
  for (auto _ : state) run_wide(ExecMode::coop, 0, 500);
  state.SetItemsProcessed(state.iterations() * 4 * 500);
}
BENCHMARK(BM_WideGraph_Coop);

void BM_WideGraph_CoopMt(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) run_wide(ExecMode::coop_mt, workers, 500);
  state.SetItemsProcessed(state.iterations() * 4 * 500);
}
BENCHMARK(BM_WideGraph_CoopMt)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// Fixed ablation with JSON output (tracked across PRs).
// ---------------------------------------------------------------------------

/// max/mean busy seconds over the workers of one run: the load-imbalance
/// signal. A perfectly balanced run has max ~= mean; a 4-worker run whose
/// max is ~4x its mean degenerated to one loaded worker.
void busy_stats(const RunResult& r, double& max_s, double& mean_s) {
  max_s = 0.0;
  mean_s = 0.0;
  if (r.worker_loads.empty()) return;
  for (const WorkerLoad& w : r.worker_loads) {
    max_s = std::max(max_s, w.busy_s);
    mean_s += w.busy_s;
  }
  mean_s /= static_cast<double>(r.worker_loads.size());
}

void print_json_loads(std::FILE* f, const char* key, const RunResult& r) {
  std::fprintf(f, "  \"%s\": [", key);
  for (std::size_t i = 0; i < r.worker_loads.size(); ++i) {
    const WorkerLoad& w = r.worker_loads[i];
    std::fprintf(f,
                 "%s{\"resumes\": %llu, \"steals\": %llu, "
                 "\"steal_attempts\": %llu, \"busy_s\": %.6f}",
                 i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(w.resumes),
                 static_cast<unsigned long long>(w.steals),
                 static_cast<unsigned long long>(w.steal_attempts),
                 w.busy_s);
  }
  std::fprintf(f, "],\n");
}

int run_ablation(const std::string& json_path, int items) {
  const unsigned hw = std::thread::hardware_concurrency();

  // Warm-up: fault in code paths and spin up the frequency governor.
  run_wide(ExecMode::coop, 0, items / 8 + 1);
  run_wide(ExecMode::coop_mt, 4, items / 8 + 1);

  RunResult mt4_r{}, steal4_r{};
  const double coop_s = run_wide(ExecMode::coop, 0, items);
  const double mt2_s = run_wide(ExecMode::coop_mt, 2, items);
  const double mt4_s = run_wide(ExecMode::coop_mt, 4, items, false, &mt4_r);
  const double steal4_s =
      run_wide(ExecMode::coop_mt, 4, items, true, &steal4_r);
  const double speedup2 = coop_s / mt2_s;
  const double speedup4 = coop_s / mt4_s;
  const double speedup4_steal = coop_s / steal4_s;
  const bool gate_active = hw >= 4;
  const bool gate_ok = !gate_active || speedup4 >= 2.0;

  double mt4_busy_max = 0, mt4_busy_mean = 0;
  double steal4_busy_max = 0, steal4_busy_mean = 0;
  busy_stats(mt4_r, mt4_busy_max, mt4_busy_mean);
  busy_stats(steal4_r, steal4_busy_max, steal4_busy_mean);

  std::printf("\n-- scheduling ablation (4 pipelines x %d items, %u hw "
              "threads) --\n",
              items, hw);
  std::printf("coop (1 thread):      %9.4f s\n", coop_s);
  std::printf("coop_mt (2 workers):  %9.4f s  (%.2fx)\n", mt2_s, speedup2);
  std::printf("coop_mt (4 workers):  %9.4f s  (%.2fx)  busy max/mean "
              "%.4f/%.4f s\n",
              mt4_s, speedup4, mt4_busy_max, mt4_busy_mean);
  std::printf("coop_mt+steal (4 w):  %9.4f s  (%.2fx)  %llu steals over "
              "%d shards, busy max/mean %.4f/%.4f s\n",
              steal4_s, speedup4_steal,
              static_cast<unsigned long long>(steal4_r.steals),
              steal4_r.shards_used, steal4_busy_max, steal4_busy_mean);
  if (gate_active) {
    std::printf("4-worker gate (>= 2.0x, enforced when hw >= 4): %s\n",
                gate_ok ? "PASS" : "FAIL");
  } else {
    std::printf("4-worker gate (>= 2.0x, enforced when hw >= 4): skipped "
                "(hw_threads=%u < 4)\n",
                hw);
  }

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_scheduling\",\n"
                 "  \"pipelines\": 4,\n"
                 "  \"items_per_pipeline\": %d,\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"coop_s\": %.6f,\n"
                 "  \"coop_mt2_s\": %.6f,\n"
                 "  \"coop_mt4_s\": %.6f,\n"
                 "  \"coop_mt4_steal_s\": %.6f,\n"
                 "  \"speedup_mt2\": %.3f,\n"
                 "  \"speedup_mt4\": %.3f,\n"
                 "  \"speedup_mt4_steal\": %.3f,\n"
                 "  \"steal4_shards\": %d,\n"
                 "  \"steal4_steals\": %llu,\n"
                 "  \"mt4_busy_max_s\": %.6f,\n"
                 "  \"mt4_busy_mean_s\": %.6f,\n"
                 "  \"steal4_busy_max_s\": %.6f,\n"
                 "  \"steal4_busy_mean_s\": %.6f,\n",
                 items, hw, coop_s, mt2_s, mt4_s, steal4_s, speedup2,
                 speedup4, speedup4_steal, steal4_r.shards_used,
                 static_cast<unsigned long long>(steal4_r.steals),
                 mt4_busy_max, mt4_busy_mean, steal4_busy_max,
                 steal4_busy_mean);
    print_json_loads(f, "mt4_loads", mt4_r);
    print_json_loads(f, "steal4_loads", steal4_r);
    std::fprintf(f,
                 "  \"gate_enforced\": %s,\n"
                 "  \"gate_ok\": %s\n"
                 "}\n",
                 gate_active ? "true" : "false", gate_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return gate_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 1 ? argv[1] : "BENCH_sched.json");
  int items = 2000;  // heavy spin: ~seconds of single-core work
  if (argc > 2) items = std::max(8, std::atoi(argv[2]));
  return run_ablation(json_path, items);
}

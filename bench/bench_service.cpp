// bench_service -- simulation-as-a-service throughput and latency:
// a cgsimd daemon on a loopback socket, driven by concurrent clients.
//
// Two phases:
//
//   * latency  -- N distinct sim-mode specs, each opened cold (lane build +
//                 full aiesim run) and then re-run warm after a one-element
//                 RTP update (server-side byte diff -> cone-limited
//                 resimulation on the pooled warm session). Reports p50/p99
//                 for both populations; the warm path must beat cold by
//                 `min-warm` (default 3x) on hosts with >= 4 hardware
//                 threads (gate_enforced records whether the gate applied).
//
//   * sustain  -- C connections x S sessions each, ALL opened before any
//                 run starts (a spin barrier holds the clients until every
//                 session is live), then every session runs once. With the
//                 defaults that is 16 x 64 = 1024 concurrent loopback
//                 sessions multiplexed over one daemon; `min-sessions`
//                 (default 1000) asserts the concurrency floor. Digest
//                 identity with the analytic expectation is unconditional.
//
//   $ ./bench_service [conns [sessions-per-conn [json [min-warm
//                     [min-sessions]]]]] [--out dir]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/graph_codec.hpp"
#include "service/kernels.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::service;

constexpr int kChains = 8;      ///< parallel inc-chains in the sim spec
constexpr int kDepth = 4;       ///< kernels per chain
constexpr int kItems = 64;      ///< items per chain input
constexpr int kColdRuns = 24;   ///< distinct specs in the latency phase

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(
                                                    v.size() - 1));
  return v[idx];
}

/// kChains independent inc-chains, kDepth kernels deep. `variant` only
/// perturbs edge capacities so each spec serializes to distinct bytes
/// (distinct warm-lane keys) while the work is identical.
GraphSpec chains_spec(int variant) {
  GraphSpec g;
  for (int c = 0; c < kChains; ++c) {
    const int base = static_cast<int>(g.edges.size());
    for (int d = 0; d <= kDepth; ++d) {
      g.edges.push_back({"i32", 64 + variant, {}});
    }
    for (int d = 0; d < kDepth; ++d) {
      g.kernels.push_back({"svc_inc_i32", {base + d, base + d + 1}});
    }
    g.inputs.push_back(base);
    g.outputs.push_back(base + kDepth);
  }
  return g;
}

/// add(e0,e1) -> e2, split(e2) -> (e3,e4): the sustain-phase coop graph.
GraphSpec diamond_spec() {
  GraphSpec g;
  g.edges = {{"i32", 64, {}}, {"i32", 64, {}}, {"i32", 64, {}},
             {"i32", 64, {}}, {"i32", 64, {}}};
  g.kernels = {{"svc_add_i32", {0, 1, 2}}, {"svc_split_i32", {2, 3, 4}}};
  g.inputs = {0, 1};
  g.outputs = {3, 4};
  return g;
}

std::string bytes_of(const std::vector<int>& v) {
  return std::string{reinterpret_cast<const char*>(v.data()),
                     v.size() * sizeof(int)};
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const int conns = argc > 1 ? std::atoi(argv[1]) : 16;
  const int per_conn = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 3 ? argv[3] : "BENCH_service.json");
  const double min_warm = argc > 4 ? std::atof(argv[4]) : 3.0;
  const int min_sessions = argc > 5 ? std::atoi(argv[5]) : 1000;

  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_enforced = hw >= 4 && min_warm > 0.0;

  register_builtin_kernels();
  std::uint16_t port = 0;
  Daemon daemon{net::listen_tcp_loopback(0, &port)};

  // --- phase 1: cold vs warm latency over the sim lane --------------------
  std::vector<double> cold_us, warm_us;
  cold_us.reserve(kColdRuns);
  warm_us.reserve(kColdRuns);
  bool sim_ok = true;
  std::uint64_t incremental_seen = 0;
  {
    ServiceClient cli{net::connect_tcp_loopback(port)};
    for (int v = 0; v < kColdRuns; ++v) {
      const GraphSpec spec = chains_spec(v);
      std::vector<std::vector<int>> ins(kChains);
      for (int c = 0; c < kChains; ++c) {
        ins[static_cast<std::size_t>(c)].resize(kItems);
        for (int i = 0; i < kItems; ++i) {
          ins[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
              v * 1000 + c * 100 + i;
        }
      }
      const auto sid = cli.open(RunMode::sim, spec);
      for (int c = 0; c < kChains; ++c) {
        cli.send_input(sid, static_cast<std::size_t>(c),
                       ins[static_cast<std::size_t>(c)].data(),
                       static_cast<std::size_t>(kItems) * sizeof(int));
      }
      const auto t_cold = Clock::now();
      RunOutcome cold = cli.run(sid);
      cold_us.push_back(us_since(t_cold));
      sim_ok &= cold.ok && !cold.result.warm;

      // One element of chain 0 changes: server byte diff -> cone resim.
      ins[0][0] += 1;
      cli.send_rtp(sid, 0, ins[0].data(),
                   static_cast<std::size_t>(kItems) * sizeof(int));
      const auto t_warm = Clock::now();
      RunOutcome warm = cli.run(sid);
      warm_us.push_back(us_since(t_warm));
      sim_ok &= warm.ok && warm.result.warm;
      incremental_seen += warm.result.incremental ? 1u : 0u;
      // inc-chain: out[i] = in[i] + kDepth, so the digests are analytic.
      std::vector<std::string> expect;
      expect.reserve(kChains);
      for (int c = 0; c < kChains; ++c) {
        std::vector<int> out = ins[static_cast<std::size_t>(c)];
        for (int& x : out) x += kDepth;
        expect.push_back(bytes_of(out));
      }
      sim_ok &= warm.result.digest == outputs_digest(expect);
      cli.close_session(sid);
    }
  }
  const double cold_p50 = percentile(cold_us, 0.5);
  const double cold_p99 = percentile(cold_us, 0.99);
  const double warm_p50 = percentile(warm_us, 0.5);
  const double warm_p99 = percentile(warm_us, 0.99);
  const double warm_speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

  // --- phase 2: sustained concurrent sessions -----------------------------
  const int total_sessions = conns * per_conn;
  const GraphSpec coop = diamond_spec();
  std::vector<int> in0(200), in1(200);
  for (int i = 0; i < 200; ++i) {
    in0[static_cast<std::size_t>(i)] = 11 + i;
    in1[static_cast<std::size_t>(i)] = -40 + i;
  }
  // out e3 = a + b, out e4 = (a + b) >> 1.
  std::vector<int> sum(200), half(200);
  for (int i = 0; i < 200; ++i) {
    const auto at = static_cast<std::size_t>(i);
    sum[at] = in0[at] + in1[at];
    half[at] = sum[at] >> 1;
  }
  const std::uint64_t expect_digest =
      outputs_digest({bytes_of(sum), bytes_of(half)});

  std::atomic<int> opened{0};
  std::atomic<int> bad{0};
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(conns));
  const auto t_sustain = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(conns));
  for (int t = 0; t < conns; ++t) {
    clients.emplace_back([&, t] {
      try {
        ServiceClient cli{net::connect_tcp_loopback(port)};
        std::vector<std::uint64_t> sids;
        sids.reserve(static_cast<std::size_t>(per_conn));
        for (int s = 0; s < per_conn; ++s) {
          const auto sid = cli.open(RunMode::coop, coop);
          cli.send_input(sid, 0, in0.data(), in0.size() * sizeof(int));
          cli.send_input(sid, 1, in1.data(), in1.size() * sizeof(int));
          sids.push_back(sid);
        }
        // Barrier: every session on every connection is live before any
        // run starts -- this is the concurrency the bench claims.
        opened.fetch_add(per_conn);
        while (opened.load() < conns * per_conn) std::this_thread::yield();

        std::vector<Clock::time_point> started;
        started.reserve(sids.size());
        for (const auto sid : sids) {
          started.push_back(Clock::now());
          cli.start_run(sid);
        }
        auto& mine = lat[static_cast<std::size_t>(t)];
        mine.reserve(sids.size());
        for (std::size_t s = 0; s < sids.size(); ++s) {
          RunOutcome out = cli.wait(sids[s]);
          mine.push_back(us_since(started[s]));
          if (!out.ok || out.result.digest != expect_digest) {
            bad.fetch_add(1);
          }
          cli.close_session(sids[s]);
        }
      } catch (...) {
        bad.fetch_add(1000);
      }
    });
  }
  for (auto& th : clients) th.join();
  const double sustain_s =
      us_since(t_sustain) / 1e6;
  std::vector<double> all_lat;
  all_lat.reserve(static_cast<std::size_t>(total_sessions));
  for (const auto& v : lat) all_lat.insert(all_lat.end(), v.begin(), v.end());
  const double run_p50 = percentile(all_lat, 0.5);
  const double run_p99 = percentile(all_lat, 0.99);
  const double runs_per_sec =
      sustain_s > 0.0 ? static_cast<double>(total_sessions) / sustain_s : 0.0;

  daemon.stop();
  const DaemonStats& st = daemon.stats();

  const bool digest_ok = bad.load() == 0 && sim_ok;
  const bool sessions_ok = total_sessions >= min_sessions;
  const bool warm_ok = !gate_enforced || warm_speedup >= min_warm;

  std::printf("latency: cold p50 %.0f us / p99 %.0f us, warm p50 %.0f us / "
              "p99 %.0f us (%.2fx)\n",
              cold_p50, cold_p99, warm_p50, warm_p99, warm_speedup);
  std::printf("sustain: %d sessions over %d connections in %.3f s "
              "(%.0f runs/s, run p50 %.0f us / p99 %.0f us)\n",
              total_sessions, conns, sustain_s, runs_per_sec, run_p50,
              run_p99);
  std::printf("digest identity: %s\n", digest_ok ? "PASS" : "FAIL");
  std::printf("concurrency floor (>= %d): %s\n", min_sessions,
              sessions_ok ? "PASS" : "FAIL");
  if (gate_enforced) {
    std::printf("warm gate (>= %.2fx): %s\n", min_warm,
                warm_ok ? "PASS" : "FAIL");
  } else {
    std::printf("warm gate (>= %.2fx): skipped (hw_threads=%u < 4 or "
                "relaxed bar)\n",
                min_warm, hw);
  }

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(
        f,
        "  \"bench\": \"bench_service\",\n"
        "  \"hw_threads\": %u,\n"
        "  \"gate_enforced\": %s,\n"
        "  \"connections\": %d,\n"
        "  \"sessions_per_connection\": %d,\n"
        "  \"concurrent_sessions\": %d,\n"
        "  \"min_sessions\": %d,\n"
        "  \"min_warm_speedup\": %.2f,\n"
        "  \"cold_p50_us\": %.1f,\n"
        "  \"cold_p99_us\": %.1f,\n"
        "  \"warm_p50_us\": %.1f,\n"
        "  \"warm_p99_us\": %.1f,\n"
        "  \"warm_speedup\": %.3f,\n"
        "  \"incremental_reruns\": %llu,\n"
        "  \"sustain_wall_s\": %.6f,\n"
        "  \"runs_per_sec\": %.1f,\n"
        "  \"run_p50_us\": %.1f,\n"
        "  \"run_p99_us\": %.1f,\n"
        "  \"digest_identical\": %s,\n"
        "  \"daemon_connections\": %llu,\n"
        "  \"daemon_sessions\": %llu,\n"
        "  \"daemon_runs\": %llu,\n"
        "  \"daemon_warm_runs\": %llu,\n"
        "  \"daemon_session_errors\": %llu\n"
        "}\n",
        hw, gate_enforced ? "true" : "false", conns, per_conn,
        total_sessions, min_sessions, min_warm, cold_p50, cold_p99, warm_p50,
        warm_p99, warm_speedup,
        static_cast<unsigned long long>(incremental_seen), sustain_s,
        runs_per_sec, run_p50, run_p99, digest_ok ? "true" : "false",
        static_cast<unsigned long long>(st.connections.load()),
        static_cast<unsigned long long>(st.sessions_opened.load()),
        static_cast<unsigned long long>(st.runs.load()),
        static_cast<unsigned long long>(st.warm_runs.load()),
        static_cast<unsigned long long>(st.session_errors.load()));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return digest_ok && sessions_ok && warm_ok ? 0 : 1;
}

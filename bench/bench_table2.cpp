// bench_table2 -- regenerates paper Table 2: wall-clock simulation time of
// cgsim (cooperative coroutines, one thread) vs the x86sim execution model
// (one OS thread per kernel) vs the cycle-approximate simulator.
//
// The paper repeats each example's input vectors until x86sim runs ~20 s
// (repetitions: bitonic 1024, farrow 512, IIR 256, bilinear 1). To keep
// this bench fast we run a fixed fraction of the paper's repetitions and
// report both the measured time and the extrapolation to paper scale; the
// claims under test are *relative*: cgsim ~ x86sim on bulk-transfer
// examples, cgsim ahead on the fine-grained bitonic example, aiesim orders
// of magnitude slower.
//
// A fourth column runs the sharded multi-core cooperative backend
// (ExecMode::coop_mt); on a single-core host it matches cgsim within
// scheduling noise, on multi-core hosts wide graphs scale. The measured
// rows are also written to a machine-readable JSON file (default
// BENCH_table2.json) so successive PRs can track the trajectory.
//
//   $ ./bench_table2 [scale-divisor [json-path]]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "aiesim/engine.hpp"
#include "bench_common.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"
#include "apps/softmax.hpp"
#include "x86sim/x86sim.hpp"

namespace {

int g_divisor = 64;        // fraction of the paper's repetitions to run
int g_aiesim_divisor = 4;  // extra scale-down for the cycle-level sim
// Which aiesim engine produces the Table-2 column (the fast path is the
// default engine; the reference variant is ablated in bench_ablation_aiesim).
constexpr auto g_aiesim_engine = aiesim::EngineVariant::fast;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  const char* name;
  int paper_reps;
  int reps;  ///< repetitions actually measured (before extrapolation)
  double cgsim_s;
  double cgsim_mt_s;  ///< sharded multi-core cooperative backend
  double x86sim_s;
  double aiesim_s;
  double paper_cgsim_s;
  double paper_x86sim_s;
  double paper_aiesim_s;
};

/// Runs one example through all three backends with `reps` repetitions of
/// its base input, returning measured wall-clock seconds extrapolated to
/// `paper_reps`.
template <class Graph, class MakeIo>
Row run_example(const char* name, int paper_reps, const Graph& graph,
                MakeIo make_io, double paper_cg, double paper_x86,
                double paper_aie) {
  const int reps = std::max(1, paper_reps / g_divisor);
  const int aie_reps = std::max(1, reps / g_aiesim_divisor);
  Row row{name, paper_reps, reps, 0, 0, 0, 0,
          paper_cg, paper_x86, paper_aie};
  const double scale = static_cast<double>(paper_reps) / reps;
  const double aie_scale = static_cast<double>(paper_reps) / aie_reps;

  {
    auto t0 = std::chrono::steady_clock::now();
    make_io([&](auto&&... io) {
      graph.run(cgsim::RunOptions{cgsim::ExecMode::coop, reps}, io...);
    });
    row.cgsim_s = seconds_since(t0) * scale;
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    make_io([&](auto&&... io) {
      graph.run(cgsim::RunOptions{cgsim::ExecMode::coop_mt, reps}, io...);
    });
    row.cgsim_mt_s = seconds_since(t0) * scale;
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    make_io([&](auto&&... io) {
      x86sim::simulate(graph.view(), reps, io...);
    });
    row.x86sim_s = seconds_since(t0) * scale;
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    make_io([&](auto&&... io) {
      aiesim::SimConfig cfg;
      cfg.detail = aiesim::DetailLevel::cycle;
      cfg.engine = g_aiesim_engine;
      cfg.repetitions = aie_reps;
      aiesim::simulate(graph.view(), cfg, io...);
    });
    row.aiesim_s = seconds_since(t0) * aie_scale;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  if (argc > 1) g_divisor = std::max(1, std::atoi(argv[1]));
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 2 ? argv[2] : "BENCH_table2.json");

  // Base workloads sized like the paper's per-repetition inputs.
  std::mt19937 rng{7};
  std::uniform_real_distribution<float> df{-100, 100};
  std::uniform_int_distribution<int> di{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};

  std::vector<apps::bitonic::Block> bit_in(512);
  for (auto& b : bit_in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, df(rng));
  }
  std::vector<apps::farrow::SampleBlock> far_in(8);
  std::vector<apps::farrow::MuBlock> far_mu(8);
  for (std::size_t b = 0; b < far_in.size(); ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      far_in[b].s[i] = static_cast<std::int16_t>(di(rng));
      far_mu[b].mu[i] = static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::iir::Block> iir_in(8);
  for (auto& b : iir_in) {
    for (auto& s : b.samples) s = df(rng) / 100.0f;
  }
  std::vector<apps::bilinear::Packet> bil_in(4096);
  for (auto& p : bil_in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, df(rng));
      p.p01.set(i, df(rng));
      p.p10.set(i, df(rng));
      p.p11.set(i, df(rng));
      p.fx.set(i, 0.5f);
      p.fy.set(i, 0.5f);
    }
  }

  std::vector<Row> rows;
  {
    std::vector<apps::bitonic::Block> out;
    rows.push_back(run_example(
        "bitonic", 1024, apps::bitonic::graph,
        [&](auto run) { out.clear(); run(bit_in, out); }, 14.32, 22.90,
        5825.96));
  }
  {
    std::vector<apps::farrow::SampleBlock> out;
    rows.push_back(run_example(
        "farrow", 512, apps::farrow::graph,
        [&](auto run) { out.clear(); run(far_in, far_mu, out); }, 22.26,
        20.70, 4287.03));
  }
  {
    std::vector<apps::iir::Block> out;
    rows.push_back(run_example(
        "IIR", 256, apps::iir::graph,
        [&](auto run) { out.clear(); run(iir_in, 1.0f, out); }, 18.20, 21.37,
        4346.19));
  }
  {
    std::vector<apps::bilinear::V> out;
    rows.push_back(run_example(
        "bilinear", 64, apps::bilinear::graph,
        [&](auto run) { out.clear(); run(bil_in, out); }, 14.95, 15.57,
        3534.90));
  }
  {
    // Extension row (not in the paper, paper columns 0.0): the all-integer
    // ML softmax pipeline through the same three backends.
    std::vector<apps::softmax::Block> sm_in(64);
    for (auto& b : sm_in) {
      for (auto& v : b.x) v = static_cast<std::int8_t>(di(rng));
    }
    std::vector<apps::softmax::Block> out;
    rows.push_back(run_example(
        "ml-sftmx*", 256, apps::softmax::graph,
        [&](auto run) { out.clear(); run(sm_in, out); }, 0.0, 0.0, 0.0));
  }

  std::printf(
      "\nTable 2: wall-clock simulation time (seconds), measured at 1/%d of\n"
      "the paper's repetitions and extrapolated to paper scale. This host\n"
      "has 1 CPU core: the paper's farrow case (x86sim < cgsim via 2 cores)\n"
      "cannot reproduce its sign here; see EXPERIMENTS.md.\n"
      "aiesim engine variant: %s\n\n",
      g_divisor, aiesim::to_string(g_aiesim_engine));
  std::printf("%-10s %6s | %10s %11s %10s %12s | %8s %8s %10s\n", "Graph",
              "Reps", "cgsim(s)", "coop_mt(s)", "x86sim(s)", "aiesim(s)",
              "p.cgsim", "p.x86", "p.aiesim");
  std::printf("%.*s\n", 108,
              "-----------------------------------------------------------"
              "-------------------------------------------------");
  bool shape = true;
  // The aiesim>>cgsim shape gates only engage on rows measured with >=2
  // repetitions (see below); record whether every row met that bar.
  bool gate_enforced = true;
  for (const Row& r : rows) {
    if (r.reps < 2) gate_enforced = false;
  }
  for (const Row& r : rows) {
    std::printf("%-10s %6d | %10.2f %11.2f %10.2f %12.2f | %8.2f %8.2f "
                "%10.2f\n",
                r.name, r.paper_reps, r.cgsim_s, r.cgsim_mt_s, r.x86sim_s,
                r.aiesim_s, r.paper_cgsim_s, r.paper_x86sim_s,
                r.paper_aiesim_s);
    // aiesim >> others -- but only when at least two repetitions were
    // measured: a single-rep sample extrapolates one-time instantiation
    // and first-touch costs by the full rep count, which swamps the
    // (now SIMD-accelerated) kernel time at smoke scale. The ml-*
    // extension rows report without gating (their gates live in
    // bench_ablation_ml).
    if (std::string_view{r.name}.substr(0, 3) == "ml-") continue;
    if (r.reps >= 2 && r.aiesim_s < 10.0 * r.cgsim_s) shape = false;
  }
  // cgsim must beat x86sim on the sync-heavy bitonic example.
  if (rows[0].cgsim_s >= rows[0].x86sim_s) shape = false;
  std::printf("\nshape check (cgsim < x86sim on bitonic; aiesim >> both): "
              "%s\n",
              shape ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_table2\",\n"
                 "  \"simd_backend\": \"%s\",\n"
                 "  \"aiesim_engine\": \"%s\",\n"
                 "  \"scale_divisor\": %d,\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": %s,\n"
                 "  \"shape_ok\": %s,\n"
                 "  \"rows\": [\n",
                 aie::simd::backend::name, aiesim::to_string(g_aiesim_engine),
                 g_divisor, std::thread::hardware_concurrency(),
                 gate_enforced ? "true" : "false",
                 shape ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"graph\": \"%s\", \"paper_reps\": %d, "
                   "\"cgsim_s\": %.4f, \"coop_mt_s\": %.4f, "
                   "\"x86sim_s\": %.4f, \"aiesim_s\": %.4f}%s\n",
                   r.name, r.paper_reps, r.cgsim_s, r.cgsim_mt_s, r.x86sim_s,
                   r.aiesim_s, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return shape ? 0 : 1;
}

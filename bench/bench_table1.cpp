// bench_table1 -- regenerates paper Table 1: processing time per input
// block for the hand-optimized AMD kernels vs the cgsim-extracted versions,
// measured on the cycle-approximate simulator (aiesim substitute) at
// 1250 MHz AIE / 625 MHz PL.
//
// The hand-optimized configuration uses native stream access; the
// extracted configuration routes stream accesses through the generated
// adapter thunk (SimConfig::generated_io), the mechanism the paper names
// for the <= 15 % throughput loss. Window-based I/O (IIR) is unaffected,
// reproducing that example's parity.
//
//   $ ./bench_table1
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "aiesim/engine.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/conv2d.hpp"
#include "apps/farrow.hpp"
#include "apps/fir.hpp"
#include "apps/iir.hpp"
#include "apps/ml_gemm.hpp"
#include "apps/softmax.hpp"

namespace {

struct Row {
  const char* name;
  std::size_t block_bytes;
  double hand_ns;
  double extracted_ns;
  double paper_hand_ns;
  double paper_extracted_ns;
  double paper_rel;
};

constexpr int kBlocks = 64;   // pipeline depth for steady-state measurement
constexpr std::size_t kWarmup = 8;

template <class Graph, class... Io>
std::pair<double, double> measure(const Graph& graph, Io&&... io) {
  double ns[2] = {};
  for (int gen = 0; gen < 2; ++gen) {
    aiesim::SimConfig cfg;
    cfg.generated_io = gen == 1;
    const auto res = aiesim::simulate(graph.view(), cfg, io...);
    ns[gen] = res.ns_per_iteration(cfg.aie_mhz, kWarmup);
  }
  return {ns[0], ns[1]};
}

Row bench_bitonic() {
  std::mt19937 rng{1};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<apps::bitonic::Block> in(kBlocks);
  for (auto& b : in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, d(rng));
  }
  std::vector<apps::bitonic::Block> out;
  const auto [hand, ext] = measure(apps::bitonic::graph, in, out);
  return {"bitonic", 64, hand, ext, 3556.8, 4168.8, 85.32};
}

Row bench_farrow() {
  std::mt19937 rng{2};
  std::uniform_int_distribution<int> dx{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};
  std::vector<apps::farrow::SampleBlock> in(kBlocks);
  std::vector<apps::farrow::MuBlock> mu(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      in[static_cast<std::size_t>(b)].s[i] =
          static_cast<std::int16_t>(dx(rng));
      mu[static_cast<std::size_t>(b)].mu[i] =
          static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::farrow::SampleBlock> out;
  const auto [hand, ext] = measure(apps::farrow::graph, in, mu, out);
  return {"farrow", 4096, hand, ext, 912.8, 1019.0, 89.58};
}

Row bench_iir() {
  std::mt19937 rng{3};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<apps::iir::Block> in(kBlocks);
  for (auto& b : in) {
    for (auto& s : b.samples) s = d(rng);
  }
  std::vector<apps::iir::Block> out;
  const auto [hand, ext] = measure(apps::iir::graph, in, 1.0f, out);
  return {"IIR", 8192, hand, ext, 5410.0, 5385.0, 100.46};
}

Row bench_bilinear() {
  std::mt19937 rng{4};
  std::uniform_real_distribution<float> pix{0, 255};
  std::uniform_real_distribution<float> frac{0, 1};
  std::vector<apps::bilinear::Packet> in(kBlocks);
  for (auto& p : in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, pix(rng));
      p.p01.set(i, pix(rng));
      p.p10.set(i, pix(rng));
      p.p11.set(i, pix(rng));
      p.fx.set(i, frac(rng));
      p.fy.set(i, frac(rng));
    }
  }
  std::vector<apps::bilinear::V> out;
  const auto [hand, ext] = measure(apps::bilinear::graph, in, out);
  return {"bilinear", sizeof(apps::bilinear::Packet), hand, ext, 484.0,
          567.2, 85.33};
}

Row bench_ml_softmax() {
  // Extension row (not in the paper): the ML softmax pipeline, window I/O
  // like the IIR example, all-integer kernels.
  std::mt19937 rng{6};
  std::vector<apps::softmax::Block> in(kBlocks);
  for (auto& b : in) {
    for (auto& v : b.x) v = static_cast<std::int8_t>(rng());
  }
  std::vector<apps::softmax::Block> out;
  const auto [hand, ext] = measure(apps::softmax::graph, in, out);
  return {"ml-sftmx*", sizeof(apps::softmax::Block), hand, ext, 0.0, 0.0,
          100.0};
}

Row bench_ml_conv2d() {
  // Extension row: 4-channel cascade conv2d, per-channel weights as RTPs.
  std::mt19937 rng{8};
  std::array<std::vector<apps::conv2d::Row>, apps::conv2d::kChannels> img;
  std::array<apps::conv2d::Weights, apps::conv2d::kChannels> w{};
  for (auto& ch : img) {
    for (int y = 0; y < kBlocks; ++y) {
      apps::conv2d::Row r;
      for (auto& v : r.px) v = static_cast<std::int8_t>(rng());
      ch.push_back(r);
    }
  }
  for (auto& cw : w) {
    for (unsigned i = 0; i < 9; ++i) cw.w[i] = static_cast<std::int8_t>(rng());
  }
  std::vector<apps::conv2d::Row> out;
  const auto [hand, ext] =
      measure(apps::conv2d::graph, img[0], img[1], img[2], img[3], w[0], w[1],
              w[2], w[3], out);
  return {"ml-conv2d*", sizeof(apps::conv2d::Row), hand, ext, 0.0, 0.0,
          100.0};
}

Row bench_ml_gemm() {
  // Extension row: the 10-kernel int8 GEMM double cascade with RTP shifts.
  std::mt19937 rng{9};
  std::array<std::vector<apps::ml_gemm::TilePair8>, 8> feeds;
  for (auto& f : feeds) {
    for (int i = 0; i < kBlocks / 4; ++i) {
      apps::ml_gemm::TilePair8 p;
      for (auto& v : p.a.m) v = static_cast<std::int8_t>(rng());
      for (auto& v : p.b.m) v = static_cast<std::int8_t>(rng());
      f.push_back(p);
    }
  }
  std::vector<apps::ml_gemm::Tile8> out0, out1;
  const auto [hand, ext] =
      measure(apps::ml_gemm::graph, feeds[0], feeds[1], feeds[2], feeds[3],
              feeds[4], feeds[5], feeds[6], feeds[7], 6, 6, out0, out1);
  return {"ml-gemm*", sizeof(apps::ml_gemm::TilePair8), hand, ext, 0.0, 0.0,
          100.0};
}

Row bench_fir() {
  // Extension row (not in the paper): a window-I/O symmetric FIR, expected
  // to reach parity like the IIR example.
  std::mt19937 rng{5};
  std::uniform_int_distribution<int> d{-20000, 20000};
  std::vector<apps::fir::Block> in(kBlocks);
  for (auto& b : in) {
    for (auto& s : b.s) s = static_cast<std::int16_t>(d(rng));
  }
  std::vector<apps::fir::Block> out;
  const auto [hand, ext] = measure(apps::fir::graph, in, out);
  return {"FIR*", 4096, hand, ext, 0.0, 0.0, 100.0};
}

}  // namespace

int main() {
  std::printf(
      "Table 1: processing time per input block, hand-optimized (AMD) vs\n"
      "cgsim-extracted, on the cycle-approximate simulator "
      "(AIE @ 1250 MHz).\n"
      "Absolute ns are model-calibrated; the claim under test is the\n"
      "relative-throughput column (paper: >= 85 %%, IIR ~ parity).\n\n");
  std::printf("%-10s %10s %14s %14s %12s | %12s\n", "Graph", "Block(B)",
              "Hand-opt(ns)", "Extracted(ns)", "Rel.thru(%)",
              "Paper rel(%)");
  std::printf("%.*s\n", 92,
              "-----------------------------------------------------------"
              "---------------------------------");
  bool shape_holds = true;
  for (const Row& r : {bench_bitonic(), bench_farrow(), bench_iir(),
                       bench_bilinear(), bench_fir(), bench_ml_softmax(),
                       bench_ml_conv2d(), bench_ml_gemm()}) {
    const double rel = 100.0 * r.hand_ns / r.extracted_ns;
    std::printf("%-10s %10zu %14.1f %14.1f %12.2f | %12.2f\n", r.name,
                r.block_bytes, r.hand_ns, r.extracted_ns, rel, r.paper_rel);
    // Shape check mirroring the paper's claims: extracted kernels stay
    // within a bounded fraction of hand-optimized (paper: >= 85 %; our
    // synthetic bilinear kernel has less compute per transferred byte than
    // AMD's, so we accept >= 78 % -- see EXPERIMENTS.md), never faster on
    // stream I/O, and the window-I/O IIR example reaches parity. The ml-*
    // extension rows have no paper counterpart and carry mixed window /
    // cascade I/O, so they report without gating here (their own gates
    // live in bench_ablation_ml).
    const std::string_view name{r.name};
    if (name.substr(0, 3) == "ml-") continue;
    const bool window_io = name == "IIR" || name == "FIR*";
    if (rel < 78.0 || rel > 102.0) shape_holds = false;
    if (window_io && rel < 98.0) shape_holds = false;
    if (!window_io && rel > 99.0) shape_holds = false;
  }
  std::printf("\n(* extension rows, not in the paper: window-I/O FIR and the "
              "ML kernel family)\n");
  std::printf("shape check (stream examples ~80-95%%, window I/O ~ parity): "
              "%s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}

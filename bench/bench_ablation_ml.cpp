// bench_ablation_ml -- ablation of the AIE emulation execution backend on
// the ML kernel workload family (src/apps/ml_gemm.hpp, conv2d.hpp,
// softmax.hpp): scalar per-lane loops vs the vector-extension SIMD backend,
// crossed with instrumentation (no counter attached vs a per-activation
// ScopedCounterBatch), on the int8 dot-product GEMM tile, the 3x3 conv2d
// row and the fixed-point softmax block.
//
// Besides the google-benchmark suites, the binary runs the fixed 3x4
// ablation, checks that the three graphs produce byte-identical outputs
// under serial coop, pinned-shard coop_mt and work-stealing execution, and
// writes the results to a machine-readable JSON file:
//
//   bench_ablation_ml [--out <dir>] [BENCH_ml.json [iters [min_speedup]]]
//
// Exit code is non-zero when the uninstrumented SIMD-over-scalar geomean
// across the three kernels falls below `min_speedup` (default 3.0; the
// bench_smoke ctest entry relaxes the bar for its tiny workload), when any
// kernel's outputs differ between backends (the integer paths must be
// bit-exact), or when any execution mode's graph digest diverges.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "aie/aie.hpp"
#include "bench_common.hpp"
#include "apps/conv2d.hpp"
#include "apps/ml_gemm.hpp"
#include "apps/softmax.hpp"
#include "core/cgsim.hpp"

namespace {

using Scalar = aie::simd::scalar_backend;
using Native = aie::simd::native_backend;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over raw bytes: cheap, order-sensitive digest for the bit-exact
/// cross-backend output comparison.
std::uint64_t fnv1a(const void* p, std::size_t n, std::uint64_t h) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

struct RunResult {
  double seconds = 0;
  std::uint64_t digest = 0;
};

// ---- ml_gemm: 8 requantized int8 tile MACs per block ----

template <class B>
RunResult run_gemm(std::size_t iters, aie::OpCounter* counter,
                   bool want_digest) {
  constexpr std::size_t kBatch = 8;
  std::array<apps::ml_gemm::TilePair8, kBatch> q{};
  std::array<apps::ml_gemm::Tile32, kBatch> cin{};
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (unsigned e = 0; e < 256; ++e) {
      q[i].a.m[e] = static_cast<std::int8_t>((e * 31 + i * 7) % 251);
      q[i].b.m[e] = static_cast<std::int8_t>((e * 17 + i * 13) % 241);
      cin[i].m[e] = static_cast<std::int32_t>((e * 101 + i * 997) % 65537) -
                    32768;
    }
  }
  RunResult res;
  // Escape the inputs: paired with the memory clobber in the in-loop
  // DoNotOptimize, this stops the compiler from hoisting the (otherwise
  // loop-invariant) kernel computation out of the timed loop.
  benchmark::DoNotOptimize(q.data());
  benchmark::DoNotOptimize(cin.data());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto c = apps::ml_gemm::mac_tile<B>(cin[i], q[i].a, q[i].b);
      auto r = apps::ml_gemm::requantize<B>(c, 6);
      if (want_digest) {
        res.digest = fnv1a(r.m.data(), sizeof(r.m), res.digest);
      } else {
        benchmark::DoNotOptimize(r);
      }
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---- conv2d: 32 convolved + requantized rows per block ----

template <class B>
RunResult run_conv(std::size_t iters, aie::OpCounter* counter,
                   bool want_digest) {
  constexpr std::size_t kBatch = 32;
  std::array<apps::conv2d::Padded, kBatch + 2> rows{};
  apps::conv2d::PartialRow base{};
  apps::conv2d::Weights w{};
  for (std::size_t r = 0; r < kBatch + 2; ++r) {
    for (unsigned x = 1; x <= apps::conv2d::kW; ++x) {
      rows[r][x] = static_cast<std::int8_t>((x * 37 + r * 11) % 239);
    }
  }
  for (unsigned x = 0; x < apps::conv2d::kW; ++x) {
    base.px[x] = static_cast<std::int32_t>(x * 523) - 16384;
  }
  for (unsigned i = 0; i < 9; ++i) w.w[i] = static_cast<std::int8_t>(5 - i);
  RunResult res;
  // Escape the inputs: see run_gemm.
  benchmark::DoNotOptimize(rows.data());
  benchmark::DoNotOptimize(&base);
  benchmark::DoNotOptimize(&w);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto p = apps::conv2d::conv_row<B>(rows[i], rows[i + 1],
                                               rows[i + 2], w, &base);
      auto r = apps::conv2d::requant_row<B>(p, apps::conv2d::kShift);
      if (want_digest) {
        res.digest = fnv1a(r.px.data(), sizeof(r.px), res.digest);
      } else {
        benchmark::DoNotOptimize(r);
      }
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---- softmax: 32 fixed-point softmax blocks per block ----

template <class B>
RunResult run_softmax(std::size_t iters, aie::OpCounter* counter,
                      bool want_digest) {
  constexpr std::size_t kBatch = 32;
  std::array<apps::softmax::Block, kBatch> q{};
  for (std::size_t i = 0; i < kBatch; ++i) {
    for (unsigned e = 0; e < apps::softmax::kN; ++e) {
      q[i].x[e] = static_cast<std::int8_t>((e * 53 + i * 19) % 255);
    }
  }
  RunResult res;
  // Escape the inputs: see run_gemm.
  benchmark::DoNotOptimize(q.data());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    aie::ScopedCounterBatch scoped{counter};
    for (std::size_t i = 0; i < kBatch; ++i) {
      auto r = apps::softmax::softmax_block<B>(q[i]);
      if (want_digest) {
        res.digest = fnv1a(r.x.data(), sizeof(r.x), res.digest);
      } else {
        benchmark::DoNotOptimize(r);
      }
    }
  }
  res.seconds = seconds_since(t0);
  return res;
}

// ---------------------------------------------------------------------------
// google-benchmark suites (filterable; the smoke test runs one of these).
// ---------------------------------------------------------------------------

void BM_MlGemmScalar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_gemm<Scalar>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_MlGemmScalar);

void BM_MlGemmNative(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_gemm<Native>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_MlGemmNative);

void BM_SoftmaxScalar(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_softmax<Scalar>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_SoftmaxScalar);

void BM_SoftmaxNative(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_softmax<Native>(1, nullptr, false).seconds);
  }
}
BENCHMARK(BM_SoftmaxNative);

// ---------------------------------------------------------------------------
// Execution-mode digest identity: the three ML graphs must produce
// byte-identical outputs under serial coop, pinned-shard coop_mt and
// work-stealing coop_mt (the integer pipelines make any divergence a
// scheduling bug).
// ---------------------------------------------------------------------------

template <class T>
std::uint64_t vec_digest(const std::vector<T>& v) {
  return fnv1a(v.data(), v.size() * sizeof(T), 0xcbf29ce484222325ull);
}

int check_exec_modes() {
  using cgsim::ExecMode;
  using cgsim::RunOptions;
  const RunOptions mt2{.mode = ExecMode::coop_mt, .repetitions = 1,
                       .workers = 2};
  const RunOptions steal2{.mode = ExecMode::coop_mt, .repetitions = 1,
                          .workers = 2, .steal = true};
  int failures = 0;

  {  // ml_gemm
    std::array<std::vector<apps::ml_gemm::TilePair8>, 8> feeds;
    for (std::size_t fi = 0; fi < feeds.size(); ++fi) {
      for (unsigned i = 0; i < 3; ++i) {
        apps::ml_gemm::TilePair8 p;
        for (unsigned e = 0; e < 256; ++e) {
          p.a.m[e] = static_cast<std::int8_t>((e * 29 + fi * 3 + i) % 253);
          p.b.m[e] = static_cast<std::int8_t>((e * 43 + fi * 7 + i) % 247);
        }
        feeds[fi].push_back(p);
      }
    }
    std::vector<apps::ml_gemm::Tile8> s0, s1, m0, m1, w0, w1;
    apps::ml_gemm::graph(feeds[0], feeds[1], feeds[2], feeds[3], feeds[4],
                         feeds[5], feeds[6], feeds[7], 6, 6, s0, s1);
    apps::ml_gemm::graph.run(mt2, feeds[0], feeds[1], feeds[2], feeds[3],
                             feeds[4], feeds[5], feeds[6], feeds[7], 6, 6, m0,
                             m1);
    apps::ml_gemm::graph.run(steal2, feeds[0], feeds[1], feeds[2], feeds[3],
                             feeds[4], feeds[5], feeds[6], feeds[7], 6, 6, w0,
                             w1);
    if (vec_digest(s0) != vec_digest(m0) || vec_digest(s1) != vec_digest(m1) ||
        vec_digest(s0) != vec_digest(w0) || vec_digest(s1) != vec_digest(w1)) {
      std::fprintf(stderr, "FAIL: ml_gemm graph digests diverge across "
                           "execution modes\n");
      ++failures;
    }
  }

  {  // conv2d
    std::array<std::vector<apps::conv2d::Row>, apps::conv2d::kChannels> img;
    std::array<apps::conv2d::Weights, apps::conv2d::kChannels> w{};
    for (std::size_t ch = 0; ch < img.size(); ++ch) {
      for (unsigned y = 0; y < 8; ++y) {
        apps::conv2d::Row r;
        for (unsigned x = 0; x < apps::conv2d::kW; ++x) {
          r.px[x] = static_cast<std::int8_t>((x * 59 + y * 13 + ch) % 251);
        }
        img[ch].push_back(r);
      }
      for (unsigned i = 0; i < 9; ++i) {
        w[ch].w[i] = static_cast<std::int8_t>(static_cast<int>(i + ch) - 4);
      }
    }
    std::vector<apps::conv2d::Row> s, m, st;
    apps::conv2d::graph(img[0], img[1], img[2], img[3], w[0], w[1], w[2],
                        w[3], s);
    apps::conv2d::graph.run(mt2, img[0], img[1], img[2], img[3], w[0], w[1],
                            w[2], w[3], m);
    apps::conv2d::graph.run(steal2, img[0], img[1], img[2], img[3], w[0],
                            w[1], w[2], w[3], st);
    if (vec_digest(s) != vec_digest(m) || vec_digest(s) != vec_digest(st)) {
      std::fprintf(stderr, "FAIL: conv2d graph digests diverge across "
                           "execution modes\n");
      ++failures;
    }
  }

  {  // softmax
    std::vector<apps::softmax::Block> in(12);
    for (std::size_t i = 0; i < in.size(); ++i) {
      for (unsigned e = 0; e < apps::softmax::kN; ++e) {
        in[i].x[e] = static_cast<std::int8_t>((e * 67 + i * 5) % 249);
      }
    }
    std::vector<apps::softmax::Block> s, m, st;
    apps::softmax::graph(in, s);
    apps::softmax::graph.run(mt2, in, m);
    apps::softmax::graph.run(steal2, in, st);
    if (vec_digest(s) != vec_digest(m) || vec_digest(s) != vec_digest(st)) {
      std::fprintf(stderr, "FAIL: softmax graph digests diverge across "
                           "execution modes\n");
      ++failures;
    }
  }
  return failures;
}

// ---------------------------------------------------------------------------
// Fixed ablation with JSON output (tracked across PRs).
// ---------------------------------------------------------------------------

struct KernelRow {
  const char* name;
  RunResult (*scalar_run)(std::size_t, aie::OpCounter*, bool);
  RunResult (*native_run)(std::size_t, aie::OpCounter*, bool);
  double scalar_uninst = 0, native_uninst = 0;
  double scalar_inst = 0, native_inst = 0;
  std::uint64_t scalar_ops = 0, native_ops = 0;
};

int run_ablation(const std::string& json_path, std::size_t iters,
                 double min_speedup) {
  std::array<KernelRow, 3> rows{{
      {"ml_gemm_int8", &run_gemm<Scalar>, &run_gemm<Native>},
      {"conv2d_int8", &run_conv<Scalar>, &run_conv<Native>},
      {"softmax_q15", &run_softmax<Scalar>, &run_softmax<Native>},
  }};

  int failures = check_exec_modes();
  const bool exec_modes_identical = failures == 0;

  for (auto& row : rows) {
    // Warm-up + bit-exactness / op-count-identity check in one pass.
    aie::OpCounter cs{}, cn{};
    const auto ws = row.scalar_run(iters / 8 + 1, &cs, true);
    const auto wn = row.native_run(iters / 8 + 1, &cn, true);
    if (ws.digest != wn.digest) {
      std::fprintf(stderr, "FAIL: %s outputs differ between backends\n",
                   row.name);
      ++failures;
    }
    if (!(cs.counts == cn.counts)) {
      std::fprintf(stderr, "FAIL: %s OpCounts differ between backends\n",
                   row.name);
      ++failures;
    }
    row.scalar_ops = cs.counts.total();
    row.native_ops = cn.counts.total();

    // Best-of-R timing: single-core CI containers are noisy, and a single
    // sample per configuration can swing a ratio by 2x.
    constexpr int kRepeats = 5;
    const auto best =
        [iters](RunResult (*fn)(std::size_t, aie::OpCounter*, bool),
                aie::OpCounter* c) {
          double m = fn(iters, c, false).seconds;
          for (int r = 1; r < kRepeats; ++r)
            m = std::min(m, fn(iters, c, false).seconds);
          return m;
        };
    row.scalar_uninst = best(row.scalar_run, nullptr);
    row.native_uninst = best(row.native_run, nullptr);
    aie::OpCounter tmp{};
    row.scalar_inst = best(row.scalar_run, &tmp);
    row.native_inst = best(row.native_run, &tmp);
  }

  double log_sum_uninst = 0, log_sum_inst = 0;
  std::printf("\n-- ML kernel SIMD ablation (%zu blocks/kernel) --\n", iters);
  std::printf("%-14s %12s %12s %9s %9s %10s\n", "kernel", "scalar_s",
              "native_s", "speedup", "inst_spd", "inst_ovhd");
  for (const auto& row : rows) {
    const double spd_uninst = row.scalar_uninst / row.native_uninst;
    const double spd_inst = row.scalar_inst / row.native_inst;
    const double ovhd = row.native_inst / row.native_uninst - 1.0;
    log_sum_uninst += std::log(spd_uninst);
    log_sum_inst += std::log(spd_inst);
    std::printf("%-14s %12.6f %12.6f %8.2fx %8.2fx %9.1f%%\n", row.name,
                row.scalar_uninst, row.native_uninst, spd_uninst, spd_inst,
                100.0 * ovhd);
  }
  const double geomean_uninst = std::exp(log_sum_uninst / rows.size());
  const double geomean_inst = std::exp(log_sum_inst / rows.size());
  std::printf("geomean speedup: %.2fx uninstrumented (required >= %.2fx), "
              "%.2fx instrumented\n",
              geomean_uninst, min_speedup, geomean_inst);
  std::printf("execution-mode digest identity: %s\n",
              exec_modes_identical ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    benchutil::emit_resource_fields(f);
    std::fprintf(f,
                 "  \"bench\": \"bench_ablation_ml\",\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"gate_enforced\": %s,\n"
                 "  \"default_backend\": \"%s\",\n"
                 "  \"exec_modes_identical\": %s,\n"
                 "  \"iters\": %zu,\n"
                 "  \"rows\": [\n",
                 std::thread::hardware_concurrency(),
                 min_speedup >= 3.0 ? "true" : "false",
                 aie::simd::backend::name,
                 exec_modes_identical ? "true" : "false", iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(
          f,
          "    {\"kernel\": \"%s\",\n"
          "     \"scalar_uninstrumented_s\": %.6f,\n"
          "     \"native_uninstrumented_s\": %.6f,\n"
          "     \"scalar_instrumented_s\": %.6f,\n"
          "     \"native_instrumented_s\": %.6f,\n"
          "     \"speedup_uninstrumented\": %.3f,\n"
          "     \"speedup_instrumented\": %.3f,\n"
          "     \"instrumentation_overhead_native\": %.3f,\n"
          "     \"ops_recorded\": %llu}%s\n",
          row.name, row.scalar_uninst, row.native_uninst, row.scalar_inst,
          row.native_inst, row.scalar_uninst / row.native_uninst,
          row.scalar_inst / row.native_inst,
          row.native_inst / row.native_uninst - 1.0,
          static_cast<unsigned long long>(row.native_ops),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"geomean_speedup_uninstrumented\": %.3f,\n"
                 "  \"geomean_speedup_instrumented\": %.3f,\n"
                 "  \"min_speedup_bar\": %.3f\n"
                 "}\n",
                 geomean_uninst, geomean_inst, min_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }

  if (geomean_uninst < min_speedup) {
    std::printf("FAIL: geomean speedup %.2fx below the %.2fx bar\n",
                geomean_uninst, min_speedup);
    ++failures;
  }
  if (failures == 0) std::printf("PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::wall_anchor();
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string out_dir = benchutil::strip_out_dir(argc, argv);
  const std::string json_path = benchutil::join_out(
      out_dir, argc > 1 ? argv[1] : "BENCH_ml.json");
  std::size_t iters = 400;  // blocks per kernel+config: ~seconds total
  if (argc > 2) iters = static_cast<std::size_t>(std::stoull(argv[2]));
  if (iters == 0) iters = 1;
  double min_speedup = 3.0;
  if (argc > 3) min_speedup = std::stod(argv[3]);
  return run_ablation(json_path, iters, min_speedup);
}
